#ifndef DBS3_STORAGE_TUPLE_H_
#define DBS3_STORAGE_TUPLE_H_

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace dbs3 {

/// A row: an ordered vector of values, positionally matched to a Schema.
///
/// Tuples are plain values (copyable, movable); the engine moves them through
/// activation queues by value, which is what makes one data activation a
/// self-contained sequential unit of work.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  const std::vector<Value>& values() const { return values_; }

  /// The concatenation of this tuple and `other` (join output row).
  Tuple Concat(const Tuple& other) const {
    std::vector<Value> out;
    out.reserve(values_.size() + other.values_.size());
    out.insert(out.end(), values_.begin(), values_.end());
    out.insert(out.end(), other.values_.begin(), other.values_.end());
    return Tuple(std::move(out));
  }

  /// Overwrites this tuple with a copy of `other`, reusing the value storage
  /// this tuple already owns (element-wise copy assignment, so string
  /// payloads reuse their buffers). Steady state performs no allocation;
  /// the engine's recycled chunk slots depend on that.
  void AssignFrom(const Tuple& other) {
    OverwriteWith(other.values_, nullptr);
  }

  /// Overwrites this tuple with the concatenation of `left` and `right`
  /// (join output row), reusing owned storage like AssignFrom.
  void AssignConcat(const Tuple& left, const Tuple& right) {
    OverwriteWith(left.values_, &right.values_);
  }

  /// Overwrites this tuple with the listed columns of `src` (projection
  /// output row), reusing owned storage like AssignFrom. `this` must not
  /// alias `src`.
  void AssignSelect(const Tuple& src, std::span<const size_t> columns) {
    const size_t n = columns.size();
    if (values_.capacity() < n) values_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (i < values_.size()) {
        values_[i] = src.values_[columns[i]];
      } else {
        values_.push_back(src.values_[columns[i]]);
      }
    }
    if (values_.size() > n) values_.resize(n);
  }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  /// "[v0, v1, ...]" for debugging.
  std::string ToString() const {
    std::string out = "[";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += values_[i].ToString();
    }
    out += "]";
    return out;
  }

 private:
  /// Replaces the contents with `a` (then `b`, when non-null) by assigning
  /// over the live prefix and trimming/appending the remainder: existing
  /// Value slots (and their heap payloads) are reused instead of destroyed
  /// and reconstructed.
  void OverwriteWith(const std::vector<Value>& a,
                     const std::vector<Value>* b) {
    const size_t n = a.size() + (b != nullptr ? b->size() : 0);
    if (values_.capacity() < n) values_.reserve(n);
    size_t i = 0;
    auto put = [&](const Value& v) {
      if (i < values_.size()) {
        values_[i] = v;
      } else {
        values_.push_back(v);
      }
      ++i;
    };
    for (const Value& v : a) put(v);
    if (b != nullptr) {
      for (const Value& v : *b) put(v);
    }
    if (values_.size() > n) values_.resize(n);
  }

  std::vector<Value> values_;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_TUPLE_H_

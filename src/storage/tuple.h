#ifndef DBS3_STORAGE_TUPLE_H_
#define DBS3_STORAGE_TUPLE_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace dbs3 {

/// A row: an ordered vector of values, positionally matched to a Schema.
///
/// Tuples are plain values (copyable, movable); the engine moves them through
/// activation queues by value, which is what makes one data activation a
/// self-contained sequential unit of work.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  const std::vector<Value>& values() const { return values_; }

  /// The concatenation of this tuple and `other` (join output row).
  Tuple Concat(const Tuple& other) const {
    std::vector<Value> out = values_;
    out.insert(out.end(), other.values_.begin(), other.values_.end());
    return Tuple(std::move(out));
  }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  /// "[v0, v1, ...]" for debugging.
  std::string ToString() const {
    std::string out = "[";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += values_[i].ToString();
    }
    out += "]";
    return out;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_TUPLE_H_

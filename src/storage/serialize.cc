#include "storage/serialize.h"

#include <cstdint>
#include <cstdio>
#include <vector>

namespace dbs3 {

namespace {

constexpr uint32_t kMagic = 0xDB530001;
constexpr uint32_t kVersion = 1;

/// RAII stdio handle.
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

Status WriteBytes(std::FILE* f, const void* data, size_t n,
                  const std::string& path) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Status WriteU64(std::FILE* f, uint64_t v, const std::string& path) {
  return WriteBytes(f, &v, sizeof(v), path);
}

Status WriteString(std::FILE* f, const std::string& s,
                   const std::string& path) {
  DBS3_RETURN_IF_ERROR(WriteU64(f, s.size(), path));
  return WriteBytes(f, s.data(), s.size(), path);
}

Status WriteValue(std::FILE* f, const Value& v, const std::string& path) {
  const uint8_t tag = v.is_int() ? 0 : 1;
  DBS3_RETURN_IF_ERROR(WriteBytes(f, &tag, 1, path));
  if (v.is_int()) {
    const int64_t x = v.AsInt();
    return WriteBytes(f, &x, sizeof(x), path);
  }
  return WriteString(f, v.AsString(), path);
}

Status ReadBytes(std::FILE* f, void* data, size_t n,
                 const std::string& path) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::OutOfRange("truncated relation file '" + path + "'");
  }
  return Status::OK();
}

Result<uint64_t> ReadU64(std::FILE* f, const std::string& path) {
  uint64_t v = 0;
  DBS3_RETURN_IF_ERROR(ReadBytes(f, &v, sizeof(v), path));
  return v;
}

Result<std::string> ReadString(std::FILE* f, const std::string& path) {
  DBS3_ASSIGN_OR_RETURN(const uint64_t n, ReadU64(f, path));
  if (n > (1ull << 32)) {
    return Status::OutOfRange("implausible string length in '" + path + "'");
  }
  std::string s(n, '\0');
  DBS3_RETURN_IF_ERROR(ReadBytes(f, s.data(), n, path));
  return s;
}

Result<Value> ReadValue(std::FILE* f, const std::string& path) {
  uint8_t tag = 0;
  DBS3_RETURN_IF_ERROR(ReadBytes(f, &tag, 1, path));
  if (tag == 0) {
    int64_t x = 0;
    DBS3_RETURN_IF_ERROR(ReadBytes(f, &x, sizeof(x), path));
    return Value(x);
  }
  if (tag == 1) {
    DBS3_ASSIGN_OR_RETURN(std::string s, ReadString(f, path));
    return Value(std::move(s));
  }
  return Status::OutOfRange("bad value tag in '" + path + "'");
}

}  // namespace

Status WriteRelation(const Relation& relation, const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  std::FILE* f = file.get();
  DBS3_RETURN_IF_ERROR(WriteBytes(f, &kMagic, sizeof(kMagic), path));
  DBS3_RETURN_IF_ERROR(WriteBytes(f, &kVersion, sizeof(kVersion), path));
  DBS3_RETURN_IF_ERROR(WriteString(f, relation.name(), path));
  // Schema.
  DBS3_RETURN_IF_ERROR(WriteU64(f, relation.schema().num_columns(), path));
  for (const Column& c : relation.schema().columns()) {
    DBS3_RETURN_IF_ERROR(WriteString(f, c.name, path));
    const uint8_t type = c.type == ValueType::kInt64 ? 0 : 1;
    DBS3_RETURN_IF_ERROR(WriteBytes(f, &type, 1, path));
  }
  // Partitioning.
  DBS3_RETURN_IF_ERROR(WriteU64(f, relation.partition_column(), path));
  const uint8_t kind =
      relation.partitioner().kind() == PartitionKind::kHash ? 0 : 1;
  DBS3_RETURN_IF_ERROR(WriteBytes(f, &kind, 1, path));
  DBS3_RETURN_IF_ERROR(WriteU64(f, relation.degree(), path));
  // Fragments.
  for (size_t i = 0; i < relation.degree(); ++i) {
    const Fragment& frag = relation.fragment(i);
    DBS3_RETURN_IF_ERROR(WriteU64(f, frag.tuples.size(), path));
    for (const Tuple& t : frag.tuples) {
      for (const Value& v : t.values()) {
        DBS3_RETURN_IF_ERROR(WriteValue(f, v, path));
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<Relation>> ReadRelation(const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) {
    return Status::NotFound("cannot open relation file '" + path + "'");
  }
  std::FILE* f = file.get();
  uint32_t magic = 0, version = 0;
  DBS3_RETURN_IF_ERROR(ReadBytes(f, &magic, sizeof(magic), path));
  if (magic != kMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a DBS3 relation file");
  }
  DBS3_RETURN_IF_ERROR(ReadBytes(f, &version, sizeof(version), path));
  if (version != kVersion) {
    return Status::InvalidArgument(
        "unsupported relation file version " + std::to_string(version) +
        " in '" + path + "' (this build reads version " +
        std::to_string(kVersion) + ")");
  }
  DBS3_ASSIGN_OR_RETURN(std::string name, ReadString(f, path));
  DBS3_ASSIGN_OR_RETURN(const uint64_t num_columns, ReadU64(f, path));
  if (num_columns == 0 || num_columns > 4096) {
    return Status::OutOfRange("implausible column count in '" + path + "'");
  }
  std::vector<Column> columns;
  for (uint64_t c = 0; c < num_columns; ++c) {
    Column col;
    DBS3_ASSIGN_OR_RETURN(col.name, ReadString(f, path));
    uint8_t type = 0;
    DBS3_RETURN_IF_ERROR(ReadBytes(f, &type, 1, path));
    col.type = type == 0 ? ValueType::kInt64 : ValueType::kString;
    columns.push_back(std::move(col));
  }
  DBS3_ASSIGN_OR_RETURN(const uint64_t partition_column, ReadU64(f, path));
  if (partition_column >= num_columns) {
    return Status::OutOfRange("partition column out of range in '" + path +
                              "'");
  }
  uint8_t kind = 0;
  DBS3_RETURN_IF_ERROR(ReadBytes(f, &kind, 1, path));
  DBS3_ASSIGN_OR_RETURN(const uint64_t degree, ReadU64(f, path));
  if (degree == 0 || degree > (1ull << 24)) {
    return Status::OutOfRange("implausible degree in '" + path + "'");
  }
  auto relation = std::make_unique<Relation>(
      std::move(name), Schema(std::move(columns)), partition_column,
      Partitioner(kind == 0 ? PartitionKind::kHash : PartitionKind::kModulo,
                  degree));
  for (uint64_t i = 0; i < degree; ++i) {
    DBS3_ASSIGN_OR_RETURN(const uint64_t tuples, ReadU64(f, path));
    for (uint64_t t = 0; t < tuples; ++t) {
      std::vector<Value> values;
      values.reserve(num_columns);
      for (uint64_t c = 0; c < num_columns; ++c) {
        DBS3_ASSIGN_OR_RETURN(Value v, ReadValue(f, path));
        values.push_back(std::move(v));
      }
      relation->AppendToFragment(i, Tuple(std::move(values)));
    }
  }
  return relation;
}

}  // namespace dbs3

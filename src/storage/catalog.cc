#include "storage/catalog.h"

namespace dbs3 {

Status Catalog::Add(std::unique_ptr<Relation> relation) {
  const std::string& name = relation->name();
  auto [it, inserted] = relations_.emplace(name, std::move(relation));
  if (!inserted) {
    return Status::AlreadyExists("relation '" + name +
                                 "' already exists in catalog");
  }
  return Status::OK();
}

Result<Relation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not found in catalog");
  }
  return it->second.get();
}

Status Catalog::Drop(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation '" + name + "' not found in catalog");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

}  // namespace dbs3

#include "storage/spill.h"

#include <cstring>
#include <utility>

namespace dbs3 {

namespace {

std::atomic<int64_t> g_live_files{0};

Status ShortWrite() { return Status::Internal("short write to spill file"); }

Status Truncated() {
  return Status::Internal("truncated spill file chunk");
}

/// Serializes one value into `buf` (appended): tag byte, then the int64
/// payload or u32 length + bytes. Mirrors the relation serializer's codec,
/// minus the cross-process framing spill files do not need.
void EncodeValue(const Value& v, std::vector<char>* buf) {
  const char tag = v.is_int() ? 0 : 1;
  buf->push_back(tag);
  if (v.is_int()) {
    const int64_t x = v.AsInt();
    const char* p = reinterpret_cast<const char*>(&x);
    buf->insert(buf->end(), p, p + sizeof(x));
    return;
  }
  const std::string& s = v.AsString();
  const uint32_t n = static_cast<uint32_t>(s.size());
  const char* p = reinterpret_cast<const char*>(&n);
  buf->insert(buf->end(), p, p + sizeof(n));
  buf->insert(buf->end(), s.data(), s.data() + s.size());
}

Status ReadExact(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) return Truncated();
  return Status::OK();
}

Result<Value> DecodeValue(std::FILE* f) {
  char tag = 0;
  DBS3_RETURN_IF_ERROR(ReadExact(f, &tag, 1));
  if (tag == 0) {
    int64_t x = 0;
    DBS3_RETURN_IF_ERROR(ReadExact(f, &x, sizeof(x)));
    return Value(x);
  }
  if (tag != 1) return Status::Internal("corrupt spill value tag");
  uint32_t n = 0;
  DBS3_RETURN_IF_ERROR(ReadExact(f, &n, sizeof(n)));
  std::string s(n, '\0');
  DBS3_RETURN_IF_ERROR(ReadExact(f, s.data(), n));
  return Value(std::move(s));
}

}  // namespace

Result<std::unique_ptr<SpillFile>> SpillFile::Create(SpillCounters* counters) {
  std::FILE* f = std::tmpfile();
  if (f == nullptr) {
    return Status::Internal("cannot open spill temporary file");
  }
  if (counters != nullptr) {
    counters->files_created.fetch_add(1, std::memory_order_relaxed);
  }
  return std::unique_ptr<SpillFile>(new SpillFile(f, counters));
}

SpillFile::SpillFile(std::FILE* file, SpillCounters* counters)
    : file_(file), counters_(counters) {
  buffer_.reserve(kSpillChunkTuples);
  g_live_files.fetch_add(1, std::memory_order_relaxed);
}

SpillFile::~SpillFile() {
  // tmpfile() handles are unlinked from creation: closing is all the
  // cleanup there is, on every path including cancellation.
  std::fclose(file_);
  g_live_files.fetch_sub(1, std::memory_order_relaxed);
}

int64_t SpillFile::live_files() {
  return g_live_files.load(std::memory_order_relaxed);
}

Status SpillFile::Append(const Tuple& tuple) {
  buffer_.push_back(tuple);
  ++tuples_;
  if (counters_ != nullptr) {
    counters_->tuples_written.fetch_add(1, std::memory_order_relaxed);
  }
  if (buffer_.size() >= kSpillChunkTuples) return FlushBuffer();
  return Status::OK();
}

Status SpillFile::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  // One frame: count, then the encoded tuples, written with a single
  // fwrite so a frame is all-or-nothing from this process's view.
  std::vector<char> frame;
  const uint32_t count = static_cast<uint32_t>(buffer_.size());
  const char* p = reinterpret_cast<const char*>(&count);
  frame.insert(frame.end(), p, p + sizeof(count));
  for (const Tuple& t : buffer_) {
    const uint32_t arity = static_cast<uint32_t>(t.size());
    const char* a = reinterpret_cast<const char*>(&arity);
    frame.insert(frame.end(), a, a + sizeof(arity));
    for (size_t i = 0; i < t.size(); ++i) EncodeValue(t.at(i), &frame);
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return ShortWrite();
  }
  bytes_written_ += frame.size();
  if (counters_ != nullptr) {
    counters_->bytes_written.fetch_add(frame.size(),
                                       std::memory_order_relaxed);
  }
  buffer_.clear();
  return Status::OK();
}

Status SpillFile::Rewind() {
  DBS3_RETURN_IF_ERROR(FlushBuffer());
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::Internal("cannot rewind spill file");
  }
  return Status::OK();
}

Result<bool> SpillFile::ReadChunk(std::vector<Tuple>* out) {
  out->clear();
  uint32_t count = 0;
  const size_t got = std::fread(&count, 1, sizeof(count), file_);
  if (got == 0) return false;  // Clean end of file.
  if (got != sizeof(count)) return Truncated();
  uint64_t bytes = sizeof(count);
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t arity = 0;
    DBS3_RETURN_IF_ERROR(ReadExact(file_, &arity, sizeof(arity)));
    bytes += sizeof(arity);
    std::vector<Value> values;
    values.reserve(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      DBS3_ASSIGN_OR_RETURN(Value v, DecodeValue(file_));
      bytes += 1 + (v.is_int() ? sizeof(int64_t)
                               : sizeof(uint32_t) + v.AsString().size());
      values.push_back(std::move(v));
    }
    out->push_back(Tuple(std::move(values)));
  }
  if (counters_ != nullptr) {
    counters_->bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace dbs3

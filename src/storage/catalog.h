#ifndef DBS3_STORAGE_CATALOG_H_
#define DBS3_STORAGE_CATALOG_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"

namespace dbs3 {

/// Owns the database's relations and resolves them by name.
///
/// Relations are heap-allocated and stable: pointers returned by Get()
/// remain valid until the relation is dropped.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers `relation` under its name. Fails on duplicate names.
  Status Add(std::unique_ptr<Relation> relation);

  /// The relation named `name`, or NotFound.
  Result<Relation*> Get(const std::string& name) const;

  /// Removes the relation named `name`, or NotFound.
  Status Drop(const std::string& name);

  /// Names of all registered relations, sorted.
  std::vector<std::string> Names() const;

  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Relation>> relations_;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_CATALOG_H_

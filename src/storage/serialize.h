#ifndef DBS3_STORAGE_SERIALIZE_H_
#define DBS3_STORAGE_SERIALIZE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"

namespace dbs3 {

/// Writes `relation` to `path` in the DBS3 binary relation format:
/// magic + version, name, schema, partitioning spec, then the fragments
/// with their tuples (little-endian, the only byte order this library
/// targets). Overwrites an existing file.
Status WriteRelation(const Relation& relation, const std::string& path);

/// Reads a relation previously written by WriteRelation. Fails with
/// actionable messages on missing files, bad magic, unsupported versions
/// and truncated payloads.
Result<std::unique_ptr<Relation>> ReadRelation(const std::string& path);

}  // namespace dbs3

#endif  // DBS3_STORAGE_SERIALIZE_H_

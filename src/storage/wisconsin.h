#ifndef DBS3_STORAGE_WISCONSIN_H_
#define DBS3_STORAGE_WISCONSIN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/relation.h"

namespace dbs3 {

/// Options for generating one Wisconsin benchmark relation [Bitton83].
///
/// The paper's experiments use these relations (e.g. the 200K-tuple DewittA
/// relation for the Allcache scan, 100K/10K and 500K/50K pairs for the join
/// experiments), hash-partitioned across fragments.
struct WisconsinOptions {
  /// Number of tuples.
  uint64_t cardinality = 1000;
  /// Degree of partitioning (number of fragments).
  size_t degree = 1;
  /// Partitioning attribute (must name a Wisconsin column, default the key).
  std::string partition_column = "unique1";
  /// Partitioning function.
  PartitionKind partition_kind = PartitionKind::kHash;
  /// Generate the three 52-char string columns (stringu1, stringu2,
  /// string4). Off by default: integer columns suffice for every experiment
  /// and string generation dominates build time at 500K tuples.
  bool with_strings = false;
  /// Seed for the unique1 permutation.
  uint64_t seed = 42;
};

/// The Wisconsin schema implied by `with_strings`. 13 integer columns:
/// unique1, unique2, two, four, ten, twenty, onePercent, tenPercent,
/// twentyPercent, fiftyPercent, unique3, evenOnePercent, oddOnePercent;
/// plus stringu1, stringu2, string4 when strings are enabled.
Schema WisconsinSchema(bool with_strings);

/// Generates the relation `name` per `options`.
///
/// Column semantics follow the benchmark: unique2 is sequential 0..n-1,
/// unique1 is a random permutation of 0..n-1 (so selections on unique1 hit
/// fragments uniformly), and the modulo columns derive from unique1.
Result<std::unique_ptr<Relation>> GenerateWisconsin(
    const std::string& name, const WisconsinOptions& options);

/// The 52-character Wisconsin string for `value`: the value encoded in
/// base-26 capital letters (7 chars), padded with 'x'. Exposed for tests.
std::string WisconsinString(uint64_t value);

}  // namespace dbs3

#endif  // DBS3_STORAGE_WISCONSIN_H_

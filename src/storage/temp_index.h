#ifndef DBS3_STORAGE_TEMP_INDEX_H_
#define DBS3_STORAGE_TEMP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/relation.h"

namespace dbs3 {

/// A temporary hash index over one fragment, built on the fly.
///
/// The paper builds indexes on the fly for the 500K-tuple databases so the
/// join algorithm's cost does not mask the scheduling effects ("we use
/// larger databases and build indexes on the fly", Section 5.3). IndexJoin
/// builds one of these per inner fragment at trigger time.
class TempIndex {
 public:
  /// Builds the index over `fragment` keyed on column `key_column`.
  TempIndex(const Fragment& fragment, size_t key_column);

  /// Indices (into the fragment's tuple vector) of tuples whose key equals
  /// `key`. Empty when there is no match.
  std::vector<uint32_t> Lookup(const Value& key) const;

  /// Number of distinct keys.
  size_t distinct_keys() const { return buckets_.size(); }

 private:
  const Fragment& fragment_;
  size_t key_column_;
  /// Hash of key -> tuple indices; probe re-checks value equality so hash
  /// collisions cannot produce wrong matches.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_TEMP_INDEX_H_

#ifndef DBS3_STORAGE_TEMP_INDEX_H_
#define DBS3_STORAGE_TEMP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/relation.h"

namespace dbs3 {

/// A temporary hash index over one fragment, built on the fly.
///
/// The paper builds indexes on the fly for the 500K-tuple databases so the
/// join algorithm's cost does not mask the scheduling effects ("we use
/// larger databases and build indexes on the fly", Section 5.3). IndexJoin
/// builds one of these per inner fragment at trigger time.
///
/// Layout: a chained bucket index over preallocated arrays. `head_` is an
/// open-addressed-by-hash bucket table (power-of-two size, one slot per
/// bucket); `next_[i]` links tuple i to the next tuple of its bucket;
/// `hashes_[i]` caches tuple i's key hash, computed exactly once at build.
/// Probing walks one chain comparing cached hashes first and key equality
/// only on hash match, and returns an iterator range over those arrays —
/// the probe path performs zero heap allocations.
class TempIndex {
 public:
  /// Sentinel chain terminator / empty bucket marker.
  static constexpr uint32_t kNone = 0xffffffffu;

  /// Builds the index over `fragment` keyed on column `key_column`.
  TempIndex(const Fragment& fragment, size_t key_column);

  /// Forward iterator over the tuple indices matching one probed key.
  /// Dereferences to the index into the fragment's tuple vector. The key
  /// (and the TempIndex) must outlive the iterator.
  class MatchIterator {
   public:
    uint32_t operator*() const { return pos_; }
    MatchIterator& operator++() {
      pos_ = index_->NextMatch(index_->next_[pos_], hash_, *key_);
      return *this;
    }
    bool operator==(const MatchIterator& other) const {
      return pos_ == other.pos_;
    }
    bool operator!=(const MatchIterator& other) const {
      return pos_ != other.pos_;
    }

   private:
    friend class TempIndex;
    MatchIterator(const TempIndex* index, const Value* key, uint64_t hash,
                  uint32_t pos)
        : index_(index), key_(key), hash_(hash), pos_(pos) {}

    const TempIndex* index_;
    const Value* key_;
    uint64_t hash_;
    uint32_t pos_;
  };

  /// The matches of one probe: a range over the index's chain arrays.
  /// Allocation-free; iteration order is ascending tuple index (the order
  /// the old map-of-vectors probe returned).
  class MatchRange {
   public:
    MatchIterator begin() const {
      return MatchIterator(index_, key_, hash_, first_);
    }
    MatchIterator end() const {
      return MatchIterator(index_, key_, hash_, kNone);
    }
    bool empty() const { return first_ == kNone; }

   private:
    friend class TempIndex;
    MatchRange(const TempIndex* index, const Value* key, uint64_t hash,
               uint32_t first)
        : index_(index), key_(key), hash_(hash), first_(first) {}

    const TempIndex* index_;
    const Value* key_;
    uint64_t hash_;
    uint32_t first_;
  };

  /// Matches for `key`. `key` must outlive the returned range.
  MatchRange Probe(const Value& key) const {
    return ProbeHashed(key.Hash(), key);
  }

  /// As Probe, with the key's hash supplied by the caller — for probe loops
  /// that compute each probe tuple's hash once and reuse it.
  MatchRange ProbeHashed(uint64_t hash, const Value& key) const {
    return MatchRange(this, &key, hash, FirstMatch(hash, key));
  }

  /// Indices (into the fragment's tuple vector) of tuples whose key equals
  /// `key`. Empty when there is no match. Materializing convenience over
  /// Probe() for tests and cold paths; the join kernels iterate the range
  /// directly.
  std::vector<uint32_t> Lookup(const Value& key) const;

  /// Number of distinct keys (exact: hash collisions are resolved by value).
  size_t distinct_keys() const { return distinct_keys_; }

 private:
  /// First tuple index matching (hash, key), or kNone.
  uint32_t FirstMatch(uint64_t hash, const Value& key) const {
    if (head_.empty()) return kNone;
    return NextMatch(head_[hash & mask_], hash, key);
  }

  /// Scans the chain from `pos` (inclusive) for the next tuple whose cached
  /// hash and key both match; kNone when the chain is exhausted.
  uint32_t NextMatch(uint32_t pos, uint64_t hash, const Value& key) const {
    while (pos != kNone) {
      if (hashes_[pos] == hash &&
          fragment_.tuples[pos].at(key_column_) == key) {
        return pos;
      }
      pos = next_[pos];
    }
    return kNone;
  }

  const Fragment& fragment_;
  size_t key_column_;
  /// Bucket heads, indexed by hash & mask_; kNone = empty bucket.
  std::vector<uint32_t> head_;
  /// Chain link per tuple of the fragment; kNone terminates.
  std::vector<uint32_t> next_;
  /// Key hash per tuple, computed once at build time.
  std::vector<uint64_t> hashes_;
  uint64_t mask_ = 0;
  size_t distinct_keys_ = 0;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_TEMP_INDEX_H_

#ifndef DBS3_STORAGE_TEMP_INDEX_H_
#define DBS3_STORAGE_TEMP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "storage/relation.h"

namespace dbs3 {

/// A temporary hash index over one fragment, built on the fly.
///
/// The paper builds indexes on the fly for the 500K-tuple databases so the
/// join algorithm's cost does not mask the scheduling effects ("we use
/// larger databases and build indexes on the fly", Section 5.3). IndexJoin
/// builds one of these per inner fragment at trigger time.
///
/// Layout: a chained bucket index over preallocated arrays. `head_` is an
/// open-addressed-by-hash bucket table (power-of-two size, one slot per
/// bucket); `next_[i]` links tuple i to the next tuple of its bucket;
/// `hashes_[i]` caches tuple i's key hash, computed exactly once at build.
/// Probing walks one chain comparing cached hashes first and key equality
/// only on hash match, and returns an iterator range over those arrays —
/// the probe path performs zero heap allocations.
class TempIndex {
 public:
  /// Sentinel chain terminator / empty bucket marker.
  static constexpr uint32_t kNone = 0xffffffffu;

  /// Builds the index over `fragment` keyed on column `key_column`.
  TempIndex(const Fragment& fragment, size_t key_column);

  /// Forward iterator over the tuple indices matching one probed key.
  /// Dereferences to the index into the fragment's tuple vector. The key
  /// (and the TempIndex) must outlive the iterator.
  class MatchIterator {
   public:
    uint32_t operator*() const { return pos_; }
    MatchIterator& operator++() {
      pos_ = index_->NextMatch(index_->next_[pos_], hash_, *key_);
      return *this;
    }
    bool operator==(const MatchIterator& other) const {
      return pos_ == other.pos_;
    }
    bool operator!=(const MatchIterator& other) const {
      return pos_ != other.pos_;
    }

   private:
    friend class TempIndex;
    MatchIterator(const TempIndex* index, const Value* key, uint64_t hash,
                  uint32_t pos)
        : index_(index), key_(key), hash_(hash), pos_(pos) {}

    const TempIndex* index_;
    const Value* key_;
    uint64_t hash_;
    uint32_t pos_;
  };

  /// The matches of one probe: a range over the index's chain arrays.
  /// Allocation-free; iteration order is ascending tuple index (the order
  /// the old map-of-vectors probe returned).
  class MatchRange {
   public:
    MatchIterator begin() const {
      return MatchIterator(index_, key_, hash_, first_);
    }
    MatchIterator end() const {
      return MatchIterator(index_, key_, hash_, kNone);
    }
    bool empty() const { return first_ == kNone; }

   private:
    friend class TempIndex;
    MatchRange(const TempIndex* index, const Value* key, uint64_t hash,
               uint32_t first)
        : index_(index), key_(key), hash_(hash), first_(first) {}

    const TempIndex* index_;
    const Value* key_;
    uint64_t hash_;
    uint32_t first_;
  };

  /// Matches for `key`. `key` must outlive the returned range.
  MatchRange Probe(const Value& key) const {
    return ProbeHashed(key.Hash(), key);
  }

  /// As Probe, with the key's hash supplied by the caller — for probe loops
  /// that compute each probe tuple's hash once and reuse it.
  MatchRange ProbeHashed(uint64_t hash, const Value& key) const {
    return MatchRange(this, &key, hash, FirstMatch(hash, key));
  }

  /// Batched probe: for each key i writes the first matching tuple index
  /// (or kNone) into `out_first[i]`. Result-equivalent to calling
  /// ProbeHashed(hashes[i], *keys[i]) per key, but processes the keys in
  /// fixed-size tiles, software-prefetching the bucket heads and then the
  /// chains' cached-hash slots a few keys ahead — a random-key probe
  /// stream's cache misses overlap instead of serializing. Allocation-free;
  /// matches past the first continue via NextMatchAfter.
  void ProbeHashed(std::span<const uint64_t> hashes, const Value* const* keys,
                   uint32_t* out_first) const;

  /// As the batched ProbeHashed, for an int64 probe-key column laid out
  /// contiguously (a ColumnBatch::Ints gather). Requires int_keyed(): the
  /// confirm compares the inline key cache against `keys[i]` directly —
  /// one flat-array load, no tuple dereference, no Value dispatch.
  void ProbeHashed(std::span<const uint64_t> hashes, const int64_t* keys,
                   uint32_t* out_first) const;

  /// Batched probe straight off an int64 key column: bucket indexes are
  /// computed inline (the same SplitMix64 finalizer Value::Hash applies to
  /// ints) one tile ahead of the resolving tile — no per-key Value
  /// dispatch and no intermediate hash array at all. Requires
  /// int_keyed(). Result-equivalent to Probe(Value(keys[i])) per key.
  void ProbeKeys(std::span<const int64_t> keys, uint32_t* out_first) const;

  /// The match after `pos` in its chain (continues a batched probe past the
  /// first match); kNone when the chain is exhausted.
  uint32_t NextMatchAfter(uint32_t pos, uint64_t hash,
                          const Value& key) const {
    return NextMatch(next_[pos], hash, key);
  }

  /// Int fast path of NextMatchAfter; requires int_keyed().
  uint32_t NextMatchAfter(uint32_t pos, int64_t key) const {
    uint32_t p = int_nodes_[pos].next;
    while (p != kNone && int_nodes_[p].key != key) p = int_nodes_[p].next;
    return p;
  }

  /// True when every indexed key is an int64. The index then carries the
  /// keys inline in a flat array sized like the chain arrays, and every
  /// probe's key confirm is a flat load + compare instead of a dependent
  /// walk through the fragment tuple's heap-allocated value array.
  bool int_keyed() const { return int_keyed_; }

  /// Indices (into the fragment's tuple vector) of tuples whose key equals
  /// `key`. Empty when there is no match. Materializing convenience over
  /// Probe() for tests and cold paths; the join kernels iterate the range
  /// directly.
  std::vector<uint32_t> Lookup(const Value& key) const;

  /// Number of distinct keys (exact: hash collisions are resolved by value).
  size_t distinct_keys() const { return distinct_keys_; }

 private:
  /// First tuple index matching (hash, key), or kNone.
  uint32_t FirstMatch(uint64_t hash, const Value& key) const {
    if (head_.empty()) return kNone;
    return NextMatch(head_[hash & mask_], hash, key);
  }

  /// Scans the chain from `pos` (inclusive) for the next tuple whose key
  /// matches; kNone when the chain is exhausted. Int-keyed indexes compare
  /// the inline key cache (exact, so the cached-hash prefilter is skipped);
  /// a non-int probe key cannot equal any int key, so it matches nothing.
  uint32_t NextMatch(uint32_t pos, uint64_t hash, const Value& key) const {
    if (int_keyed_) {
      const int64_t* k = key.TryInt();
      if (k == nullptr) return kNone;
      while (pos != kNone && int_nodes_[pos].key != *k) {
        pos = int_nodes_[pos].next;
      }
      return pos;
    }
    while (pos != kNone) {
      if (hashes_[pos] == hash &&
          fragment_.tuples[pos].at(key_column_) == key) {
        return pos;
      }
      pos = next_[pos];
    }
    return kNone;
  }

  /// Tile width of the batched probes: per-tile scratch fits in a few
  /// cache lines, and one tile of work separates a prefetch from its use.
  static constexpr size_t kProbeTile = 64;

  /// Resolves first matches for one tile of int probe keys (count <=
  /// kProbeTile) whose chain heads are already loaded into `pos` (the
  /// caller's pipeline stage); `pos`/`keys`/`out_first` point at the
  /// tile's first element. `pos` is clobbered. Requires int_keyed() and a
  /// non-empty index.
  void IntResolveTile(uint32_t* pos, const int64_t* keys, size_t count,
                      uint32_t* out_first) const;

  const Fragment& fragment_;
  size_t key_column_;
  /// Bucket heads, indexed by hash & mask_; kNone = empty bucket.
  std::vector<uint32_t> head_;
  /// Chain link per tuple of the fragment; kNone terminates.
  std::vector<uint32_t> next_;
  /// Key hash per tuple, computed once at build time.
  std::vector<uint64_t> hashes_;
  /// Packed chain node of the int fast path: the inline key and the chain
  /// link share one 16-byte slot, so a chain step touches a single cache
  /// line (key-only and link-only layouts cost two random lines per step).
  /// Populated iff every key is an int64 (int_keyed_).
  struct IntNode {
    int64_t key;
    uint32_t next;
  };
  std::vector<IntNode> int_nodes_;
  uint64_t mask_ = 0;
  size_t distinct_keys_ = 0;
  bool int_keyed_ = false;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_TEMP_INDEX_H_

#ifndef DBS3_STORAGE_VALUE_H_
#define DBS3_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace dbs3 {

/// Column data types. The Wisconsin benchmark needs exactly integers and
/// fixed-width strings, so the type system stays deliberately small.
enum class ValueType { kInt64, kString };

/// Name of a ValueType ("int64" / "string").
const char* ValueTypeName(ValueType type);

/// A single attribute value: a 64-bit integer or a string.
class Value {
 public:
  /// Default-constructs the integer 0.
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  ValueType type() const {
    // The variant's alternative order mirrors the enum (checked below), so
    // the type tag is the index itself — no per-call alternative probing.
    return static_cast<ValueType>(data_.index());
  }
  bool is_int() const { return data_.index() == 0; }

  /// The integer payload. Requires is_int().
  int64_t AsInt() const { return std::get<int64_t>(data_); }

  /// The integer payload, or nullptr for strings. The columnar batch view
  /// uses this to gather a chunk's column into a contiguous int64 array.
  const int64_t* TryInt() const { return std::get_if<int64_t>(&data_); }

  /// The string payload. Requires !is_int().
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// A well-distributed 64-bit hash of the value; equal values hash equally.
  uint64_t Hash() const;

  /// Debug/benchmark rendering: the integer in decimal, or the raw string.
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Orders ints before strings, then by payload. Total order for sorting.
  bool operator<(const Value& other) const { return data_ < other.data_; }

 private:
  std::variant<int64_t, std::string> data_;

  static_assert(static_cast<size_t>(ValueType::kInt64) == 0 &&
                    static_cast<size_t>(ValueType::kString) == 1,
                "ValueType values must match the variant alternative order");
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_VALUE_H_

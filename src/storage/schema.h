#ifndef DBS3_STORAGE_SCHEMA_H_
#define DBS3_STORAGE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace dbs3 {

/// One column of a relation schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Schema of the concatenation of two tuples (join output). Columns from
  /// `right` that collide with a `left` name get `prefix` prepended.
  static Schema Concat(const Schema& left, const Schema& right,
                       const std::string& prefix = "r_");

  /// "name:type, name:type, ..." for debugging.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

inline bool operator==(const Column& a, const Column& b) {
  return a.name == b.name && a.type == b.type;
}

}  // namespace dbs3

#endif  // DBS3_STORAGE_SCHEMA_H_

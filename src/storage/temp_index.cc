#include "storage/temp_index.h"

namespace dbs3 {

TempIndex::TempIndex(const Fragment& fragment, size_t key_column)
    : fragment_(fragment), key_column_(key_column) {
  const size_t n = fragment.tuples.size();
  if (n == 0) return;
  // Power-of-two bucket count at load factor <= 1, so a probe's expected
  // chain length stays O(1) and the bucket lookup is a mask, not a modulo.
  size_t buckets = 1;
  while (buckets < n) buckets <<= 1;
  head_.assign(buckets, kNone);
  mask_ = buckets - 1;
  next_.assign(n, kNone);
  hashes_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    hashes_[i] = fragment.tuples[i].at(key_column_).Hash();
  }
  // Insert in reverse: pushing at the chain head then yields chains in
  // ascending tuple order, preserving the match order of the previous
  // map-of-vectors layout.
  for (uint32_t i = static_cast<uint32_t>(n); i-- > 0;) {
    const size_t b = hashes_[i] & mask_;
    next_[i] = head_[b];
    head_[b] = i;
  }
  // A tuple is a distinct key iff the first chain match for its own key is
  // itself. Expected O(n) at load factor <= 1.
  for (uint32_t i = 0; i < n; ++i) {
    if (FirstMatch(hashes_[i], fragment.tuples[i].at(key_column_)) == i) {
      ++distinct_keys_;
    }
  }
}

std::vector<uint32_t> TempIndex::Lookup(const Value& key) const {
  std::vector<uint32_t> out;
  for (uint32_t i : Probe(key)) out.push_back(i);
  return out;
}

}  // namespace dbs3

#include "storage/temp_index.h"

#include <algorithm>

#include "common/hash.h"

namespace dbs3 {

TempIndex::TempIndex(const Fragment& fragment, size_t key_column)
    : fragment_(fragment), key_column_(key_column) {
  const size_t n = fragment.tuples.size();
  if (n == 0) return;
  // Power-of-two bucket count at load factor <= 0.5, so most probes
  // resolve at the first chain node and the bucket lookup is a mask, not a
  // modulo. The extra head slots cost 4 bytes per tuple — far less than
  // the chain-collision walks they remove from every probe.
  size_t buckets = 1;
  while (buckets < 2 * n) buckets <<= 1;
  head_.assign(buckets, kNone);
  mask_ = buckets - 1;
  next_.assign(n, kNone);
  hashes_.resize(n);
  // Hash every key once; when the whole column is int64 (the common join
  // key shape), also cache the keys inline so probes confirm against a
  // flat array instead of dereferencing the fragment tuple's heap-held
  // value vector.
  int_nodes_.resize(n);
  int_keyed_ = true;
  for (uint32_t i = 0; i < n; ++i) {
    const Value& key = fragment.tuples[i].at(key_column_);
    hashes_[i] = key.Hash();
    if (const int64_t* k = key.TryInt(); k != nullptr) {
      int_nodes_[i].key = *k;
    } else {
      int_keyed_ = false;
    }
  }
  if (!int_keyed_) {
    int_nodes_.clear();
    int_nodes_.shrink_to_fit();
  }
  // Insert in reverse: pushing at the chain head then yields chains in
  // ascending tuple order, preserving the match order of the previous
  // map-of-vectors layout.
  for (uint32_t i = static_cast<uint32_t>(n); i-- > 0;) {
    const size_t b = hashes_[i] & mask_;
    next_[i] = head_[b];
    head_[b] = i;
  }
  if (int_keyed_) {
    for (uint32_t i = 0; i < n; ++i) int_nodes_[i].next = next_[i];
  }
  // A tuple is a distinct key iff the first chain match for its own key is
  // itself. Expected O(n) at load factor <= 0.5.
  for (uint32_t i = 0; i < n; ++i) {
    if (FirstMatch(hashes_[i], fragment.tuples[i].at(key_column_)) == i) {
      ++distinct_keys_;
    }
  }
}

void TempIndex::IntResolveTile(uint32_t* pos, const int64_t* keys,
                               size_t count, uint32_t* out_first) const {
  // Chains are resolved in *waves* over a compacted active list: one chain
  // step per wave for every still-unresolved key, survivors kept
  // branch-free. A scalar chain walk takes an unpredictable branch between
  // any two dependent loads, and every mispredict discards the speculative
  // lookahead that overlaps the misses of neighbouring keys; the
  // wave/compaction form keeps a whole tile's loads in flight no matter
  // how the per-key branches resolve. The confirm is a single flat load
  // from the inline key cache — exact, so no cached-hash prefilter.
  uint32_t act[kProbeTile];  // Compacted list of unresolved slot indices.
  // Step 0, run for every slot without compaction: at load factor <= 0.5
  // most probes either land on an empty bucket or match the first chain
  // node, so the survivor set that needs the wave machinery is small.
  size_t active = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t p = pos[i];
    if (p == kNone) {
      out_first[i] = kNone;
      continue;
    }
    const IntNode node = int_nodes_[p];
    const bool hit = node.key == keys[i];
    out_first[i] = hit ? p : kNone;
    const uint32_t link = hit ? kNone : node.next;
    pos[i] = link;
    act[active] = static_cast<uint32_t>(i);
    active += (link != kNone) ? 1 : 0;
  }
  while (active > 0) {
    size_t survivors = 0;
    for (size_t k = 0; k < active; ++k) {
      const uint32_t i = act[k];
      const uint32_t p = pos[i];
      const IntNode node = int_nodes_[p];
      if (node.key == keys[i]) {
        out_first[i] = p;
        continue;
      }
      const uint32_t link = node.next;
      pos[i] = link;
      act[survivors] = i;
      survivors += (link != kNone) ? 1 : 0;
    }
    for (size_t k = 0; k < survivors; ++k) {
      const uint32_t p = pos[act[k]];
      __builtin_prefetch(&int_nodes_[p]);
    }
    active = survivors;
  }
}

void TempIndex::ProbeHashed(std::span<const uint64_t> hashes,
                            const int64_t* keys, uint32_t* out_first) const {
  const size_t n = hashes.size();
  if (head_.empty()) {
    for (size_t i = 0; i < n; ++i) out_first[i] = kNone;
    return;
  }
  // Bucket heads are prefetched one whole tile ahead: a tile's head slots
  // are requested while the previous tile is still being resolved.
  uint32_t pos[kProbeTile];
  for (size_t i = 0; i < std::min(kProbeTile, n); ++i) {
    __builtin_prefetch(&head_[hashes[i] & mask_]);
  }
  for (size_t base = 0; base < n; base += kProbeTile) {
    const size_t count = std::min(kProbeTile, n - base);
    const size_t next_end = std::min(base + 2 * kProbeTile, n);
    for (size_t j = base + kProbeTile; j < next_end; ++j) {
      __builtin_prefetch(&head_[hashes[j] & mask_]);
    }
    for (size_t i = 0; i < count; ++i) {
      pos[i] = head_[hashes[base + i] & mask_];
    }
    IntResolveTile(pos, keys + base, count, out_first + base);
  }
}

void TempIndex::ProbeKeys(std::span<const int64_t> keys,
                          uint32_t* out_first) const {
  const size_t n = keys.size();
  if (head_.empty()) {
    for (size_t i = 0; i < n; ++i) out_first[i] = kNone;
    return;
  }
  // Three-stage tile pipeline: while tile t resolves its chains, tile
  // t+1's chain heads are being loaded (their lines prefetched one stage
  // earlier) and its first chain nodes prefetched, and tile t+2's bucket
  // indexes are computed (pure ALU) and head lines prefetched. Every
  // random load thus has a full tile of work between prefetch issue and
  // use — the probe stream's misses overlap instead of serializing.
  uint32_t buckets[2][kProbeTile];  // Slot t+2 is written, t+1 is read.
  uint32_t pos[2][kProbeTile];      // Slot t+1 is written, t is read.
  const auto tile_count = [n](size_t base) {
    return base < n ? std::min(kProbeTile, n - base) : size_t{0};
  };
  const auto compute_buckets = [&](size_t base, uint32_t* out) {
    const size_t count = tile_count(base);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t b = static_cast<uint32_t>(
          HashInt64(static_cast<uint64_t>(keys[base + i])) & mask_);
      out[i] = b;
      __builtin_prefetch(&head_[b]);
    }
  };
  const auto load_heads = [&](size_t base, const uint32_t* buckets_in,
                              uint32_t* pos_out) {
    const size_t count = tile_count(base);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t p = head_[buckets_in[i]];
      pos_out[i] = p;
      if (p != kNone) __builtin_prefetch(&int_nodes_[p]);
    }
  };
  compute_buckets(0, buckets[0]);
  load_heads(0, buckets[0], pos[0]);
  compute_buckets(kProbeTile, buckets[1]);
  for (size_t base = 0; base < n; base += kProbeTile) {
    const size_t t = (base / kProbeTile) % 2;
    compute_buckets(base + 2 * kProbeTile, buckets[t]);
    load_heads(base + kProbeTile, buckets[1 - t], pos[1 - t]);
    IntResolveTile(pos[t], keys.data() + base, tile_count(base),
                   out_first + base);
  }
}

void TempIndex::ProbeHashed(std::span<const uint64_t> hashes,
                            const Value* const* keys,
                            uint32_t* out_first) const {
  const size_t n = hashes.size();
  if (head_.empty()) {
    for (size_t i = 0; i < n; ++i) out_first[i] = kNone;
    return;
  }
  if (int_keyed_) {
    // Extract the probe keys tile by tile and reuse the int wave. A
    // non-int probe key cannot equal any int key; the rare tile holding
    // one falls back to per-key resolution.
    for (size_t i = 0; i < std::min(kProbeTile, n); ++i) {
      __builtin_prefetch(&head_[hashes[i] & mask_]);
    }
    int64_t ikeys[kProbeTile];
    for (size_t base = 0; base < n; base += kProbeTile) {
      const size_t count = std::min(kProbeTile, n - base);
      const size_t next_end = std::min(base + 2 * kProbeTile, n);
      for (size_t j = base + kProbeTile; j < next_end; ++j) {
        __builtin_prefetch(&head_[hashes[j] & mask_]);
      }
      bool all_int = true;
      for (size_t i = 0; i < count; ++i) {
        const int64_t* k = keys[base + i]->TryInt();
        all_int &= (k != nullptr);
        ikeys[i] = (k != nullptr) ? *k : 0;
      }
      if (all_int) {
        uint32_t pos[kProbeTile];
        for (size_t i = 0; i < count; ++i) {
          pos[i] = head_[hashes[base + i] & mask_];
        }
        IntResolveTile(pos, ikeys, count, out_first + base);
      } else {
        for (size_t i = 0; i < count; ++i) {
          out_first[base + i] = FirstMatch(hashes[base + i], *keys[base + i]);
        }
      }
    }
    return;
  }
  // Generic (string- or mixed-keyed) index: wave resolution over the
  // cached hashes, confirming by Value equality only on hash match.
  constexpr size_t kTile = kProbeTile;
  uint32_t pos[kTile];  // Current chain node of each unresolved tile slot.
  uint32_t act[kTile];  // Compacted list of unresolved slot indices.
  for (size_t i = 0; i < std::min(kTile, n); ++i) {
    __builtin_prefetch(&head_[hashes[i] & mask_]);
  }
  for (size_t base = 0; base < n; base += kTile) {
    const size_t count = std::min(kTile, n - base);
    const size_t next_end = std::min(base + 2 * kTile, n);
    for (size_t j = base + kTile; j < next_end; ++j) {
      __builtin_prefetch(&head_[hashes[j] & mask_]);
    }
    size_t active = 0;
    for (size_t i = 0; i < count; ++i) {
      const uint32_t first = head_[hashes[base + i] & mask_];
      pos[i] = first;
      out_first[base + i] = kNone;
      act[active] = static_cast<uint32_t>(i);
      active += (first != kNone) ? 1 : 0;
    }
    while (active > 0) {
      size_t survivors = 0;
      for (size_t k = 0; k < active; ++k) {
        const uint32_t i = act[k];
        const uint32_t p = pos[i];
        // A 64-bit hash match is almost always a true match, so this
        // branch pair predicts well; the hash-mismatch steps advance the
        // chain without touching the tuple.
        if (hashes_[p] == hashes[base + i] &&
            fragment_.tuples[p].at(key_column_) == *keys[base + i]) {
          out_first[base + i] = p;
          continue;
        }
        const uint32_t link = next_[p];
        pos[i] = link;
        act[survivors] = i;
        survivors += (link != kNone) ? 1 : 0;
      }
      for (size_t k = 0; k < survivors; ++k) {
        const uint32_t p = pos[act[k]];
        __builtin_prefetch(&hashes_[p]);
        __builtin_prefetch(&next_[p]);
      }
      active = survivors;
    }
  }
}

std::vector<uint32_t> TempIndex::Lookup(const Value& key) const {
  std::vector<uint32_t> out;
  for (uint32_t i : Probe(key)) out.push_back(i);
  return out;
}

}  // namespace dbs3

#include "storage/temp_index.h"

namespace dbs3 {

TempIndex::TempIndex(const Fragment& fragment, size_t key_column)
    : fragment_(fragment), key_column_(key_column) {
  buckets_.reserve(fragment.tuples.size());
  for (uint32_t i = 0; i < fragment.tuples.size(); ++i) {
    const Value& key = fragment.tuples[i].at(key_column_);
    buckets_[key.Hash()].push_back(i);
  }
}

std::vector<uint32_t> TempIndex::Lookup(const Value& key) const {
  std::vector<uint32_t> out;
  auto it = buckets_.find(key.Hash());
  if (it == buckets_.end()) return out;
  for (uint32_t i : it->second) {
    if (fragment_.tuples[i].at(key_column_) == key) out.push_back(i);
  }
  return out;
}

}  // namespace dbs3

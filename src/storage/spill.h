#ifndef DBS3_STORAGE_SPILL_H_
#define DBS3_STORAGE_SPILL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/tuple.h"

namespace dbs3 {

/// Tuples per on-disk chunk frame — the spill counterpart of the engine's
/// TupleChunk batching: writes buffer up to this many tuples and land as
/// one frame, reads return one frame at a time, so the streaming passes of
/// the spill paths touch memory in chunk-sized units.
inline constexpr size_t kSpillChunkTuples = 256;

/// Shared IO counters a group of spill files reports into (the spilling
/// operators own one per logic and publish it as spill.* metrics).
/// Atomic — files on different operator instances write concurrently.
struct SpillCounters {
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> tuples_written{0};
  std::atomic<uint64_t> files_created{0};
};

/// One anonymous temporary file of spilled tuples: append-only while
/// writing, then rewindable for streaming chunk reads (rewind-and-rescan is
/// allowed — the block nested-loop fallback re-reads its probe file once
/// per build batch).
///
/// Frame format, little-endian host order (spill files never leave the
/// process): per chunk a u32 tuple count, per tuple a u32 arity, per value
/// a 1-byte tag (0 = int64 payload, 1 = u32 length + string bytes) — the
/// in-process sibling of the relation serializer's value codec. Backed by
/// std::tmpfile, so the file is unlinked from birth: any exit path
/// (including cancellation tearing the operator down mid-spill) reclaims
/// the disk space when the handle closes.
///
/// Not internally synchronized: callers serialize access per file (the
/// spilling operators append under their instance lock and drain from the
/// sequential OnFinish).
class SpillFile {
 public:
  /// Opens a fresh unlinked temporary file. `counters` (optional) receives
  /// this file's IO tallies; it must outlive the file.
  static Result<std::unique_ptr<SpillFile>> Create(
      SpillCounters* counters = nullptr);

  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Buffers one tuple for writing; flushes a full chunk frame to disk.
  Status Append(const Tuple& tuple);

  /// Flushes the write buffer and repositions at the first chunk. Call
  /// before the first ReadChunk and before every rescan.
  Status Rewind();

  /// Reads the next chunk frame into `*out` (cleared first). Returns false
  /// at end of file, true when `*out` holds tuples. The vector is the
  /// engine's TupleChunk wire unit (storage does not name the alias).
  Result<bool> ReadChunk(std::vector<Tuple>* out);

  /// Tuples appended over the file's lifetime.
  uint64_t tuple_count() const { return tuples_; }

  /// Bytes flushed to disk so far.
  uint64_t bytes_written() const { return bytes_written_; }

  /// Live SpillFile handles process-wide — the cleanup tests assert this
  /// returns to zero after cancelled executions are torn down.
  static int64_t live_files();

 private:
  SpillFile(std::FILE* file, SpillCounters* counters);

  Status FlushBuffer();

  std::FILE* file_;
  SpillCounters* counters_;
  std::vector<Tuple> buffer_;
  uint64_t tuples_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_SPILL_H_

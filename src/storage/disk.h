#ifndef DBS3_STORAGE_DISK_H_
#define DBS3_STORAGE_DISK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace dbs3 {

/// A simulated disk: a placement target for fragments. The paper stores
/// fragments round-robin across disks so that the degree of partitioning can
/// exceed the number of disks; experiments run with relations cached in main
/// memory, so disks matter only for placement accounting here.
struct Disk {
  int id = 0;
  /// (relation name, fragment index) pairs placed on this disk.
  std::vector<std::pair<std::string, size_t>> fragments;
  uint64_t bytes = 0;
};

/// A fixed array of simulated disks with round-robin fragment placement.
class DiskArray {
 public:
  /// Requires num_disks >= 1.
  explicit DiskArray(size_t num_disks);

  size_t num_disks() const { return disks_.size(); }
  const Disk& disk(size_t i) const { return disks_[i]; }

  /// Places every fragment of `relation` round-robin, starting after the
  /// last placement (so consecutive relations interleave like the paper's
  /// storage model), and stamps Fragment::disk_id.
  void Place(Relation& relation);

  /// Max fragment count over disks minus min fragment count: 0 or 1 for a
  /// single placed relation (round-robin balance invariant).
  size_t FragmentCountSpread() const;

 private:
  std::vector<Disk> disks_;
  size_t next_ = 0;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_DISK_H_

#include "storage/wisconsin.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace dbs3 {

Schema WisconsinSchema(bool with_strings) {
  std::vector<Column> cols = {
      {"unique1", ValueType::kInt64},
      {"unique2", ValueType::kInt64},
      {"two", ValueType::kInt64},
      {"four", ValueType::kInt64},
      {"ten", ValueType::kInt64},
      {"twenty", ValueType::kInt64},
      {"onePercent", ValueType::kInt64},
      {"tenPercent", ValueType::kInt64},
      {"twentyPercent", ValueType::kInt64},
      {"fiftyPercent", ValueType::kInt64},
      {"unique3", ValueType::kInt64},
      {"evenOnePercent", ValueType::kInt64},
      {"oddOnePercent", ValueType::kInt64},
  };
  if (with_strings) {
    cols.push_back({"stringu1", ValueType::kString});
    cols.push_back({"stringu2", ValueType::kString});
    cols.push_back({"string4", ValueType::kString});
  }
  return Schema(std::move(cols));
}

std::string WisconsinString(uint64_t value) {
  std::string out(52, 'x');
  // Seven base-26 digits, most significant first (enough for 8 billion rows).
  for (int pos = 6; pos >= 0; --pos) {
    out[static_cast<size_t>(pos)] = static_cast<char>('A' + value % 26);
    value /= 26;
  }
  return out;
}

Result<std::unique_ptr<Relation>> GenerateWisconsin(
    const std::string& name, const WisconsinOptions& options) {
  if (options.cardinality == 0) {
    return Status::InvalidArgument("Wisconsin cardinality must be > 0");
  }
  if (options.degree == 0) {
    return Status::InvalidArgument("Wisconsin degree must be > 0");
  }
  const Schema schema = WisconsinSchema(options.with_strings);
  auto col = schema.IndexOf(options.partition_column);
  if (!col.ok()) return col.status();

  auto relation = std::make_unique<Relation>(
      name, schema, col.value(),
      Partitioner(options.partition_kind, options.degree));

  // unique1 is a random permutation of 0..n-1 (Fisher-Yates).
  const uint64_t n = options.cardinality;
  std::vector<uint64_t> unique1(n);
  std::iota(unique1.begin(), unique1.end(), 0);
  Rng rng(options.seed);
  for (uint64_t i = n - 1; i > 0; --i) {
    std::swap(unique1[i], unique1[rng.Below(i + 1)]);
  }

  static constexpr const char* kString4Cycle[4] = {"AAAA", "HHHH", "OOOO",
                                                   "VVVV"};
  for (uint64_t u2 = 0; u2 < n; ++u2) {
    const uint64_t u1 = unique1[u2];
    std::vector<Value> values;
    values.reserve(schema.num_columns());
    values.emplace_back(static_cast<int64_t>(u1));
    values.emplace_back(static_cast<int64_t>(u2));
    values.emplace_back(static_cast<int64_t>(u1 % 2));
    values.emplace_back(static_cast<int64_t>(u1 % 4));
    values.emplace_back(static_cast<int64_t>(u1 % 10));
    values.emplace_back(static_cast<int64_t>(u1 % 20));
    const int64_t one_percent = static_cast<int64_t>(u1 % 100);
    values.emplace_back(one_percent);
    values.emplace_back(static_cast<int64_t>(u1 % 10));
    values.emplace_back(static_cast<int64_t>(u1 % 5));
    values.emplace_back(static_cast<int64_t>(u1 % 2));
    values.emplace_back(static_cast<int64_t>(u1));
    values.emplace_back(one_percent * 2);
    values.emplace_back(one_percent * 2 + 1);
    if (options.with_strings) {
      values.emplace_back(WisconsinString(u1));
      values.emplace_back(WisconsinString(u2));
      std::string s4 = kString4Cycle[u2 % 4];
      s4.resize(52, 'x');
      values.emplace_back(std::move(s4));
    }
    DBS3_RETURN_IF_ERROR(relation->Insert(Tuple(std::move(values))));
  }
  return relation;
}

}  // namespace dbs3

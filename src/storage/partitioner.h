#ifndef DBS3_STORAGE_PARTITIONER_H_
#define DBS3_STORAGE_PARTITIONER_H_

#include <cstddef>
#include <string>

#include "storage/value.h"

namespace dbs3 {

/// How a partitioning function maps an attribute value to a fragment.
///
/// The paper's storage model partitions relations "by hashing on one or more
/// attributes" (Section 2). kHash is that function. kModulo (key mod degree)
/// is the deliberately transparent variant used by the skewed-database
/// generator so experiments can construct a wanted tuple-placement skew while
/// keeping joins co-partitioned — the paper builds >50 such databases the
/// same way, by controlling tuple distribution within fragments.
enum class PartitionKind { kHash, kModulo };

/// Maps an attribute value to a fragment index in [0, degree).
///
/// Two relations partitioned with equal Partitioners on their join attribute
/// are co-partitioned: matching keys land in fragments with equal indices
/// (the precondition for IdealJoin).
class Partitioner {
 public:
  /// Requires degree >= 1.
  Partitioner(PartitionKind kind, size_t degree);

  size_t FragmentOf(const Value& value) const;

  PartitionKind kind() const { return kind_; }
  size_t degree() const { return degree_; }

  bool operator==(const Partitioner& other) const {
    return kind_ == other.kind_ && degree_ == other.degree_;
  }

  std::string ToString() const;

 private:
  PartitionKind kind_;
  size_t degree_;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_PARTITIONER_H_

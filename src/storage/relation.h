#ifndef DBS3_STORAGE_RELATION_H_
#define DBS3_STORAGE_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/partitioner.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace dbs3 {

/// One horizontal fragment of a relation: the unit of static partitioning,
/// and (for a triggered operation) the unit of sequential work.
struct Fragment {
  std::vector<Tuple> tuples;
  /// Simulated disk the fragment is placed on (round-robin), -1 if unplaced.
  int disk_id = -1;

  uint64_t cardinality() const { return tuples.size(); }
};

/// A statically partitioned relation (Lera-par storage model, Section 2):
/// tuples are split into `degree` fragments by a partitioning function on one
/// attribute; fragments are distributed onto disks round-robin, so the degree
/// of partitioning is independent of the number of disks.
class Relation {
 public:
  /// Creates an empty relation with `partitioner.degree()` fragments,
  /// partitioned on column index `partition_column` of `schema`.
  Relation(std::string name, Schema schema, size_t partition_column,
           Partitioner partitioner);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t partition_column() const { return partition_column_; }
  const Partitioner& partitioner() const { return partitioner_; }

  /// Degree of partitioning (number of fragments).
  size_t degree() const { return fragments_.size(); }

  /// Total number of tuples across fragments.
  uint64_t cardinality() const;

  const Fragment& fragment(size_t i) const { return fragments_[i]; }
  Fragment& fragment(size_t i) { return fragments_[i]; }

  /// Cardinality of each fragment, indexed by fragment.
  std::vector<uint64_t> FragmentCardinalities() const;

  /// Routes `tuple` to its fragment via the partitioning function.
  /// Fails if the tuple arity does not match the schema.
  Status Insert(Tuple tuple);

  /// Appends directly to fragment `f`, bypassing the partitioning function.
  /// Used by generators that construct a wanted placement (and by Store,
  /// whose input was already routed by a Transmit). Requires f < degree().
  void AppendToFragment(size_t f, Tuple tuple);

  /// All tuples of all fragments, in fragment order. Convenience for tests.
  std::vector<Tuple> Scan() const;

  /// Estimated in-memory size in bytes (used for disk placement accounting
  /// and the Allcache model).
  uint64_t EstimatedBytes() const;

  /// Returns a copy of this relation repartitioned to `new_degree`
  /// fragments with the same partitioning kind and column — the paper's
  /// dynamic raise of the degree of partitioning (Section 5.5: "the initial
  /// degree of partitioning can be dynamically raised to increase the
  /// number of activations and reduce their execution time").
  Result<std::unique_ptr<Relation>> Repartitioned(size_t new_degree) const;

 private:
  std::string name_;
  Schema schema_;
  size_t partition_column_;
  Partitioner partitioner_;
  std::vector<Fragment> fragments_;
};

}  // namespace dbs3

#endif  // DBS3_STORAGE_RELATION_H_

#include "storage/skew.h"

#include "common/rng.h"
#include "common/zipf.h"

namespace dbs3 {

Schema SkewSchema() {
  return Schema({{"key", ValueType::kInt64}, {"payload", ValueType::kInt64}});
}

Result<SkewedDatabase> BuildSkewedDatabase(const SkewSpec& spec) {
  if (spec.degree == 0) {
    return Status::InvalidArgument("skew degree must be > 0");
  }
  if (spec.theta < 0.0 || spec.theta > 1.0) {
    return Status::InvalidArgument("skew theta must be in [0, 1], got " +
                                   std::to_string(spec.theta));
  }
  if (spec.b_cardinality < spec.degree) {
    return Status::InvalidArgument(
        "B' cardinality (" + std::to_string(spec.b_cardinality) +
        ") must be >= degree (" + std::to_string(spec.degree) +
        ") so every fragment has at least one key to join");
  }
  const Schema schema = SkewSchema();
  const Partitioner part(PartitionKind::kModulo, spec.degree);
  SkewedDatabase db;
  db.a = std::make_unique<Relation>("A", schema, /*partition_column=*/0, part);
  db.b = std::make_unique<Relation>("Bp", schema, /*partition_column=*/0, part);

  // B': fragment i holds keys {i, i+m, i+2m, ...}, b/m keys per fragment
  // (remainder spread over the first fragments). Unskewed by construction.
  const size_t m = spec.degree;
  std::vector<uint64_t> b_per_fragment(m, spec.b_cardinality / m);
  for (size_t i = 0; i < spec.b_cardinality % m; ++i) ++b_per_fragment[i];
  for (size_t i = 0; i < m; ++i) {
    for (uint64_t j = 0; j < b_per_fragment[i]; ++j) {
      const int64_t key = static_cast<int64_t>(i + j * m);
      db.b->AppendToFragment(
          i, Tuple({Value(key), Value(static_cast<int64_t>(j))}));
    }
  }

  // A: fragment cardinalities follow Zipf(theta); keys drawn uniformly from
  // the B' keys of the same fragment, so each A tuple has exactly one match.
  const std::vector<uint64_t> a_counts =
      ZipfCounts(spec.a_cardinality, m, spec.theta);
  Rng rng(spec.seed);
  for (size_t i = 0; i < m; ++i) {
    for (uint64_t j = 0; j < a_counts[i]; ++j) {
      const uint64_t pick = rng.Below(b_per_fragment[i]);
      const int64_t key = static_cast<int64_t>(i + pick * m);
      db.a->AppendToFragment(
          i, Tuple({Value(key), Value(static_cast<int64_t>(j))}));
    }
  }
  return db;
}

}  // namespace dbs3

#include "storage/partitioner.h"

#include <cassert>

namespace dbs3 {

Partitioner::Partitioner(PartitionKind kind, size_t degree)
    : kind_(kind), degree_(degree) {
  assert(degree >= 1);
}

size_t Partitioner::FragmentOf(const Value& value) const {
  switch (kind_) {
    case PartitionKind::kHash:
      return static_cast<size_t>(value.Hash() % degree_);
    case PartitionKind::kModulo: {
      if (!value.is_int()) {
        // Strings have no natural modulo; fall back to the hash function.
        return static_cast<size_t>(value.Hash() % degree_);
      }
      const int64_t m = static_cast<int64_t>(degree_);
      int64_t r = value.AsInt() % m;
      if (r < 0) r += m;
      return static_cast<size_t>(r);
    }
  }
  return 0;
}

std::string Partitioner::ToString() const {
  std::string out =
      kind_ == PartitionKind::kHash ? "hash(" : "modulo(";
  out += std::to_string(degree_);
  out += ")";
  return out;
}

}  // namespace dbs3

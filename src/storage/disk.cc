#include "storage/disk.h"

#include <algorithm>
#include <cassert>

namespace dbs3 {

DiskArray::DiskArray(size_t num_disks) : disks_(num_disks) {
  assert(num_disks >= 1);
  for (size_t i = 0; i < num_disks; ++i) disks_[i].id = static_cast<int>(i);
}

void DiskArray::Place(Relation& relation) {
  for (size_t f = 0; f < relation.degree(); ++f) {
    Disk& d = disks_[next_];
    d.fragments.emplace_back(relation.name(), f);
    relation.fragment(f).disk_id = d.id;
    // Attribute the fragment's share of the relation bytes to the disk.
    next_ = (next_ + 1) % disks_.size();
  }
  const uint64_t total = relation.EstimatedBytes();
  const uint64_t card = std::max<uint64_t>(relation.cardinality(), 1);
  for (size_t f = 0; f < relation.degree(); ++f) {
    const Fragment& frag = relation.fragment(f);
    disks_[static_cast<size_t>(frag.disk_id)].bytes +=
        total * frag.cardinality() / card;
  }
}

size_t DiskArray::FragmentCountSpread() const {
  size_t lo = disks_.front().fragments.size();
  size_t hi = lo;
  for (const Disk& d : disks_) {
    lo = std::min(lo, d.fragments.size());
    hi = std::max(hi, d.fragments.size());
  }
  return hi - lo;
}

}  // namespace dbs3

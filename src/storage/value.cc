#include "storage/value.h"

#include "common/hash.h"

namespace dbs3 {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

uint64_t Value::Hash() const {
  if (is_int()) return HashInt64(static_cast<uint64_t>(AsInt()));
  return HashBytes(AsString());
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  return AsString();
}

}  // namespace dbs3

#include "storage/relation.h"

#include <cassert>

namespace dbs3 {

namespace {

/// Rough per-value footprint: tag + payload.
uint64_t ValueBytes(const Value& v) {
  if (v.is_int()) return 16;
  return 16 + v.AsString().size();
}

}  // namespace

Relation::Relation(std::string name, Schema schema, size_t partition_column,
                   Partitioner partitioner)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      partition_column_(partition_column),
      partitioner_(partitioner),
      fragments_(partitioner.degree()) {
  assert(partition_column_ < schema_.num_columns());
}

uint64_t Relation::cardinality() const {
  uint64_t n = 0;
  for (const Fragment& f : fragments_) n += f.cardinality();
  return n;
}

std::vector<uint64_t> Relation::FragmentCardinalities() const {
  std::vector<uint64_t> out(fragments_.size());
  for (size_t i = 0; i < fragments_.size(); ++i) {
    out[i] = fragments_[i].cardinality();
  }
  return out;
}

Status Relation::Insert(Tuple tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema " + schema_.ToString() + " of relation '" +
        name_ + "'");
  }
  const size_t f = partitioner_.FragmentOf(tuple.at(partition_column_));
  fragments_[f].tuples.push_back(std::move(tuple));
  return Status::OK();
}

void Relation::AppendToFragment(size_t f, Tuple tuple) {
  assert(f < fragments_.size());
  fragments_[f].tuples.push_back(std::move(tuple));
}

std::vector<Tuple> Relation::Scan() const {
  std::vector<Tuple> out;
  out.reserve(cardinality());
  for (const Fragment& f : fragments_) {
    out.insert(out.end(), f.tuples.begin(), f.tuples.end());
  }
  return out;
}

Result<std::unique_ptr<Relation>> Relation::Repartitioned(
    size_t new_degree) const {
  if (new_degree == 0) {
    return Status::InvalidArgument("repartition degree must be > 0");
  }
  auto out = std::make_unique<Relation>(
      name_, schema_, partition_column_,
      Partitioner(partitioner_.kind(), new_degree));
  for (const Fragment& frag : fragments_) {
    for (const Tuple& t : frag.tuples) {
      DBS3_RETURN_IF_ERROR(out->Insert(t));
    }
  }
  return out;
}

uint64_t Relation::EstimatedBytes() const {
  uint64_t bytes = 0;
  for (const Fragment& f : fragments_) {
    for (const Tuple& t : f.tuples) {
      bytes += 24;  // Tuple header.
      for (const Value& v : t.values()) bytes += ValueBytes(v);
    }
  }
  return bytes;
}

}  // namespace dbs3

#include "server/query_runtime.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "server/shared/shared_batch.h"
#include "server/shared/shared_query.h"

namespace dbs3 {

namespace {

size_t DefaultPoolThreads(size_t configured) {
  if (configured > 0) return configured;
  return std::max<unsigned>(1, std::thread::hardware_concurrency());
}

int64_t Micros(double seconds) {
  return static_cast<int64_t>(seconds * 1e6);
}

}  // namespace

Result<PhaseOutcome> QueryEnv::Run(Plan& plan, const CostModel& cost_model,
                                   const ScheduleOptions& schedule) {
  if (cancel_.ShouldStop()) return cancel_.ToStatus();

  // Scheduler feedback: the live multiprogramming level reduces this
  // phase's thread allocation [Rahm93], so N concurrent queries together
  // apply roughly single-user thread pressure to the machine.
  const ScheduleOptions adjusted = ApplyUtilization(
      schedule, MultiUserUtilization(runtime_->live_queries()));

  const bool adaptive = runtime_->options_.rebalance_interval_us > 0;
  // The grant ceiling for the rebalancer: what this phase would have been
  // scheduled at without the utilization clamp. Scheduling twice is safe —
  // ScheduleQuery overwrites the plan's params, and the clamped pass below
  // runs last so the execution starts at the clamped width.
  size_t desired_threads = 0;
  if (adaptive) {
    Result<ScheduleReport> unclamped = ScheduleQuery(plan, cost_model,
                                                     schedule);
    if (unclamped.ok()) {
      const ScheduleReport& r = unclamped.value();
      desired_threads = std::accumulate(r.threads.begin(), r.threads.end(),
                                        size_t{0});
    }
  }

  PhaseOutcome out;
  DBS3_ASSIGN_OR_RETURN(out.schedule,
                        ScheduleQuery(plan, cost_model, adjusted));
  const size_t total_threads = std::accumulate(
      out.schedule.threads.begin(), out.schedule.threads.end(), size_t{0});

  // Whole-plan reservation against the shared pool; a plan too wide for
  // the pool falls back to private threads (correct, just without the
  // spawn amortization).
  ExecOptions exec;
  exec.cancel = cancel_;
  exec.chunk_pool = &runtime_->chunk_pool_;
  exec.quota = &quota_;
  bool reserved = false;
  if (total_threads <= runtime_->pool_.num_threads()) {
    reserved = runtime_->ReserveWorkers(total_threads, cancel_);
    if (reserved) {
      exec.workers = &runtime_->pool_;
    } else if (cancel_.ShouldStop()) {
      return cancel_.ToStatus();
    }
  }

  // Pool-backed phases register on the load board when adaptivity is on:
  // the rebalance tick may park surplus workers mid-phase (their slots are
  // then credited back per exit through the board) or grant extra workers
  // up to the unclamped width.
  RebalanceTotals rebalance;
  if (reserved && adaptive) {
    exec.board = &runtime_->board_;
    exec.desired_threads = std::max(desired_threads, total_threads);
    exec.grant_quantum = runtime_->options_.rebalance_quantum_units;
    exec.rebalance_out = &rebalance;
  }

  Executor executor;
  Result<ExecutionResult> run = executor.Run(plan, exec);
  // Slot settlement: a board-registered execution (rebalance.active)
  // already credited one slot per worker exit — reserved plus granted,
  // exactly what it consumed — so releasing the reservation again would
  // double-free capacity. Static executions release the whole reservation
  // here, as before. This runs before the error return below so the
  // accounting settles on every path.
  if (reserved && !rebalance.active) {
    runtime_->ReleaseWorkers(total_threads);
  }
  stats_.threads_granted += rebalance.granted;
  stats_.threads_released += rebalance.parked;
  DBS3_RETURN_IF_ERROR(run.status());
  out.execution = std::move(run).value();

  // Fold the phase into the query's running stats — cancelled phases too,
  // so a cancelled query reports the partial work it did.
  ++stats_.phases;
  stats_.execution_seconds += out.execution.seconds;
  stats_.units_cancelled += out.execution.units_cancelled;
  for (const OperationStats& op : out.execution.op_stats) {
    stats_.busy_seconds += op.busy_seconds;
    for (uint64_t c : op.per_instance_processed) stats_.units_processed += c;
  }
  if (reserved) stats_.used_shared_pool = true;
  stats_.quota_high_water_units =
      std::max(stats_.quota_high_water_units, quota_.high_water());
  // Roll the phase's spill activity up into the runtime-wide registry, so
  // operators observe spill.bytes_written etc. across all queries.
  if (runtime_->options_.metrics != nullptr) {
    for (const auto& [name, value] : out.execution.metrics.counters) {
      if (name.rfind("spill.", 0) == 0 && value > 0) {
        runtime_->options_.metrics->counter(name)->Add(value);
      }
    }
  }
  if (publish_) publish_(stats_);

  if (!out.execution.completion.ok()) return out.execution.completion;
  return out;
}

QueryRuntime::QueryRuntime(QueryRuntimeOptions options)
    : options_(options),
      pool_(DefaultPoolThreads(options.pool_threads)),
      chunk_pool_(options.chunk_pool_buffers),
      admission_(AdmissionConfig{
          std::max<size_t>(1, options.max_queued_queries),
          options.memory_budget_units,
          // Joint CPU+memory admission: the controller may prefer an
          // equal-priority waiter whose declared thread share is
          // deliverable right now (see AdmissionConfig::pool_threads).
          pool_.num_threads(),
          [this] {
            MutexLock lock(&slots_mu_);
            return free_slots_;
          }}),
      board_(PoolLoadBoard::Hooks{
          [this] { return TryReserveOneWorker(); },
          [this] { ReleaseWorkers(1); }}),
      free_slots_(pool_.num_threads()) {
  if (options_.metrics != nullptr) {
    options_.metrics->gauge("runtime.pool_idle_threads")
        ->Set(static_cast<int64_t>(pool_.idle_threads()));
    options_.metrics->RegisterProbe(
        "runtime.dispatch_queue_depth",
        [this] { return static_cast<int64_t>(pool_.queue_depth()); });
    probes_registered_ = true;
    sampler_ = std::make_unique<MetricsSampler>(
        options_.metrics, std::chrono::microseconds(1000));
    sampler_->Start();
  }
  if (options_.rebalance_interval_us > 0) {
    rebalancer_ = std::thread([this] { RebalanceLoop(); });
  }
  const size_t drivers = std::max<size_t>(1, options_.max_concurrent_queries);
  drivers_.reserve(drivers);
  for (size_t i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

QueryRuntime::~QueryRuntime() {
  shutdown_.store(true);
  admission_.Shutdown();
  // Stop the rebalancer before draining the drivers: a tick must not plan
  // against executions that are tearing down, and stopping it first keeps
  // the board quiescent while the last queries finish.
  if (rebalancer_.joinable()) {
    {
      MutexLock lock(&rebalance_mu_);
      rebalance_stop_ = true;
    }
    rebalance_cv_.SignalAll();
    rebalancer_.join();
  }
  for (auto& d : drivers_) {
    if (d.joinable()) d.join();
  }
  if (sampler_ != nullptr) sampler_->Stop();
  // The queue-depth probe points at pool_; drop it before this runtime
  // goes away. ClearProbes drops every probe on the registry — fine for
  // the facade's single-runtime-per-registry setup (the executor's
  // per-execution probes live on private registries).
  if (probes_registered_) options_.metrics->ClearProbes();
  // pool_ destroys after the drivers: every execution has completed, so
  // its queue is empty and the threads exit immediately.
}

QueryHandle QueryRuntime::Submit(QuerySpec spec) {
  auto state = std::make_shared<QueryHandle::State>();
  state->id = next_id_.fetch_add(1);
  state->cancel = spec.cancel.has_value() ? *spec.cancel : CancelToken();
  if (spec.deadline.has_value()) state->cancel.set_deadline(*spec.deadline);
  QueryHandle handle(state);

  // Cancellation wake-up path: a fired token must promptly wake (a) drivers
  // blocked in PopNext holding this query back on the memory budget and
  // (b) ReserveWorkers waits. Installed before enqueue so no cancel can
  // slip between; Complete clears it under the same mutex, and since
  // Complete runs before the runtime's teardown finishes draining, the
  // captured `this` is live whenever the hook can run.
  {
    MutexLock lock(&state->mu);
    state->cancel_notify = [this] {
      admission_.NotifyCancelled();
      { MutexLock slots(&slots_mu_); }
      slots_cv_.SignalAll();
    };
  }

  if (options_.metrics != nullptr) {
    options_.metrics->counter("runtime.queries_submitted")->Add(1);
  }

  PendingQuery pending;
  pending.id = state->id;
  pending.priority = spec.priority;
  pending.memory_units = spec.memory_units;
  pending.threads_hint = spec.threads_hint;
  pending.cancel = state->cancel;
  pending.enqueued_at = std::chrono::steady_clock::now();
  pending.share_class =
      spec.shared != nullptr ? spec.shared->share_class : 0;
  pending.shared = spec.shared;
  pending.finish = [this, state](Result<QueryResult> outcome,
                                 const QueryRunStats& stats) {
    Complete(state, std::move(outcome), stats);
  };
  pending.run = [this, state, memory_units = spec.memory_units,
                 body = std::move(spec.body)](double wait_seconds) mutable {
    QueryRunStats stats;
    stats.admission_wait_seconds = wait_seconds;
    {
      MutexLock lock(&state->mu);
      state->stats = stats;
    }
    if (shutdown_.load()) {
      Complete(state, Status::Cancelled("query runtime shutting down"),
               stats);
      return;
    }
    if (state->cancel.ShouldStop()) {
      // Cancelled or deadline-expired while still queued: complete without
      // executing anything.
      Complete(state, state->cancel.ToStatus(), stats);
      return;
    }
    live_.fetch_add(1);
    QueryEnv env(this, state->cancel, memory_units,
                 [this, state](const QueryRunStats& s) {
                   QueryRunStats merged = s;
                   MutexLock lock(&state->mu);
                   merged.admission_wait_seconds =
                       state->stats.admission_wait_seconds;
                   state->stats = merged;
                 });
    env.stats_.admission_wait_seconds = wait_seconds;
    Result<QueryResult> outcome = body(env);
    live_.fetch_sub(1);
    Complete(state, std::move(outcome), env.stats_);
  };

  const Status queued = admission_.TryEnqueue(std::move(pending));
  if (!queued.ok()) {
    // Shed (or submitted into a shutting-down runtime): the handle
    // completes immediately with the admission error.
    if (options_.metrics != nullptr &&
        queued.code() == StatusCode::kResourceExhausted) {
      options_.metrics->counter("runtime.queries_shed")->Add(1);
    }
    Complete(state, queued, QueryRunStats{});
  }
  return handle;
}

void QueryRuntime::DriverLoop() {
  const BatchWindow window{
      std::chrono::microseconds(options_.shared_batch_window_us),
      std::max<size_t>(1, options_.shared_batch_max_queries)};
  PendingQuery q;
  std::vector<PendingQuery> followers;
  double window_wait_seconds = 0.0;
  while (admission_.PopNextBatch(&q, &followers, window,
                                 &window_wait_seconds)) {
    if (followers.empty()) {
      const double wait_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        q.enqueued_at)
              .count();
      q.run(wait_seconds);
      admission_.ReleaseMemory(q.memory_units);
    } else {
      uint64_t batch_units = q.memory_units;
      for (const PendingQuery& f : followers) batch_units += f.memory_units;
      RunSharedBatch(&q, &followers, window_wait_seconds);
      admission_.ReleaseMemory(batch_units);
    }
    q = PendingQuery{};
    followers.clear();
  }
}

void QueryRuntime::RunSharedBatch(PendingQuery* lead,
                                  std::vector<PendingQuery>* followers,
                                  double window_wait_seconds) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<PendingQuery*> members;
  members.reserve(1 + followers->size());
  members.push_back(lead);
  for (PendingQuery& f : *followers) members.push_back(&f);

  // Shed members that died while queued — a deadline expiring inside the
  // batching window sheds the query here instead of riding the batch.
  std::vector<PendingQuery*> live;
  live.reserve(members.size());
  for (PendingQuery* m : members) {
    QueryRunStats stats;
    stats.admission_wait_seconds =
        std::chrono::duration<double>(now - m->enqueued_at).count();
    if (shutdown_.load()) {
      m->finish(Status::Cancelled("query runtime shutting down"), stats);
    } else if (m->cancel.ShouldStop()) {
      m->finish(m->cancel.ToStatus(), stats);
    } else if (m->shared == nullptr) {
      m->finish(Status::Internal("shareable query without a shared spec"),
                stats);
    } else {
      live.push_back(m);
    }
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    // Everyone else shed: the member's own solo body is the identical (and
    // cheaper) path — no tagging, no router.
    PendingQuery* solo = live[0];
    solo->run(std::chrono::duration<double>(now - solo->enqueued_at).count());
    return;
  }

  // One batch presents as one running query to the scheduler's
  // multiprogramming feedback — that is the point of sharing the pass.
  live_.fetch_add(1);

  std::vector<const SharedScanSpec*> specs;
  std::vector<CancelToken> cancels;
  specs.reserve(live.size());
  cancels.reserve(live.size());
  for (PendingQuery* m : live) {
    specs.push_back(m->shared.get());
    cancels.push_back(m->cancel);
  }

  const auto fail_all = [&](const Status& error) {
    for (PendingQuery* m : live) {
      QueryRunStats stats;
      stats.admission_wait_seconds =
          std::chrono::duration<double>(now - m->enqueued_at).count();
      stats.shared_batch_queries = live.size();
      stats.batch_window_wait_seconds = window_wait_seconds;
      m->finish(error, stats);
    }
  };

  Result<SharedBatchPlan> built = BuildSharedBatchPlan(specs, cancels);
  if (!built.ok()) {
    fail_all(built.status());
    live_.fetch_sub(1);
    return;
  }
  SharedBatchPlan batch = std::move(built).value();

  const SharedScanSpec& lead_spec = *live[0]->shared;
  const ScheduleOptions adjusted = ApplyUtilization(
      lead_spec.schedule, MultiUserUtilization(live_queries()));
  Result<ScheduleReport> scheduled =
      ScheduleQuery(batch.plan, lead_spec.cost_model, adjusted);
  if (!scheduled.ok()) {
    fail_all(scheduled.status());
    live_.fetch_sub(1);
    return;
  }
  const ScheduleReport& report = scheduled.value();
  const size_t total_threads = std::accumulate(
      report.threads.begin(), report.threads.end(), size_t{0});

  // Same worker-pool contract as QueryEnv::Run: whole-plan all-or-nothing
  // reservation, private threads when the plan outsizes the pool. The
  // engine-level token stays unfired — member cancellation is per-tuple
  // drain inside the shared operators, not an execution abort.
  ExecOptions exec;
  exec.chunk_pool = &chunk_pool_;
  MemoryQuota quota(0);
  exec.quota = &quota;
  bool reserved = false;
  if (total_threads <= pool_.num_threads()) {
    reserved = ReserveWorkers(total_threads, live[0]->cancel);
    if (reserved) exec.workers = &pool_;
  }
  Executor executor;
  Result<ExecutionResult> run = executor.Run(batch.plan, exec);
  if (reserved) ReleaseWorkers(total_threads);
  if (!run.ok()) {
    fail_all(run.status());
    live_.fetch_sub(1);
    return;
  }
  const ExecutionResult execution = std::move(run).value();

  // The per-query conservation audit is only meaningful after a clean
  // drain (an aborted execution legitimately strands in-flight chunks).
  const Status audit =
      execution.completion.ok() ? batch.ledger->Audit() : Status::OK();

  double total_busy = 0.0;
  for (const OperationStats& op : execution.op_stats) {
    total_busy += op.busy_seconds;
  }

  if (options_.metrics != nullptr) {
    options_.metrics->counter("runtime.shared_batches")->Add(1);
    options_.metrics->summary("shared.queries_per_batch")
        ->Record(static_cast<int64_t>(live.size()));
    options_.metrics->summary("shared.batch_window_wait_us")
        ->Record(Micros(window_wait_seconds));
  }

  for (size_t i = 0; i < live.size(); ++i) {
    PendingQuery* m = live[i];
    QueryRunStats stats;
    stats.admission_wait_seconds =
        std::chrono::duration<double>(now - m->enqueued_at).count();
    stats.shared_batch_queries = live.size();
    stats.batch_window_wait_seconds = window_wait_seconds;
    stats.execution_seconds = execution.seconds;
    stats.phases = 1;
    stats.used_shared_pool = reserved;
    stats.units_processed = batch.ledger->routed(i);
    stats.units_cancelled = batch.ledger->dropped_cancelled(i);
    // The pass was shared; attribute an even share of the busy time.
    stats.busy_seconds = total_busy / static_cast<double>(live.size());

    if (!audit.ok()) {
      m->finish(audit, stats);
    } else if (m->cancel.ShouldStop()) {
      m->finish(m->cancel.ToStatus(), stats);
    } else if (!execution.completion.ok()) {
      m->finish(execution.completion, stats);
    } else {
      QueryResult result;
      result.result = std::move(batch.sinks[i]);
      result.execution = execution;
      result.schedule = report;
      result.detail = batch.detail;
      m->finish(std::move(result), stats);
    }
  }
  live_.fetch_sub(1);
}

void QueryRuntime::Complete(const std::shared_ptr<QueryHandle::State>& state,
                            Result<QueryResult> outcome,
                            const QueryRunStats& stats) {
  if (options_.metrics != nullptr) {
    MetricsRegistry& m = *options_.metrics;
    if (outcome.ok()) {
      m.counter("runtime.queries_completed")->Add(1);
    } else if (outcome.status().code() == StatusCode::kCancelled) {
      m.counter("runtime.queries_cancelled")->Add(1);
    } else if (outcome.status().code() == StatusCode::kDeadlineExceeded) {
      m.counter("runtime.queries_deadline_exceeded")->Add(1);
    }
    if (!outcome.ok()) {
      // A query that failed (cancel/deadline) never reaches the facade's
      // engine-metrics accumulation, so its drained units are credited to
      // the engine-wide ledger counter here.
      m.counter("engine.units_cancelled")->Add(stats.units_cancelled);
    }
    if (stats.threads_granted > 0) {
      m.counter("runtime.threads_granted")->Add(stats.threads_granted);
    }
    if (stats.threads_released > 0) {
      m.counter("runtime.threads_released")->Add(stats.threads_released);
    }
    m.summary("runtime.admission_wait_us")
        ->Record(Micros(stats.admission_wait_seconds));
    m.summary("runtime.execution_wall_us")
        ->Record(Micros(stats.execution_seconds));
    m.summary("runtime.busy_us")->Record(Micros(stats.busy_seconds));
    m.summary("runtime.quota_high_water_units")
        ->Record(static_cast<int64_t>(stats.quota_high_water_units));
  }
  {
    MutexLock lock(&state->mu);
    state->stats = stats;
    state->outcome.emplace(std::move(outcome));
    state->done = true;
    // Drop the wake-up hook: after completion nothing waits on this query,
    // and clearing under mu means no Cancel can invoke it against a
    // runtime that has moved on to teardown.
    state->cancel_notify = nullptr;
  }
  state->cv.SignalAll();
}

bool QueryRuntime::ReserveWorkers(size_t slots, const CancelToken& cancel) {
  if (slots == 0) return true;
  if (slots > pool_.num_threads()) return false;
  MutexLock lock(&slots_mu_);
  while (free_slots_ < slots) {
    if (cancel.ShouldStop()) return false;
    // Announce the blocked reservation: the rebalancer reads this as
    // pressure (running queries should shed down to their fair share) and
    // TryReserveOneWorker yields to it (grants must not starve waiters).
    slot_waiters_.fetch_add(1, std::memory_order_release);
    // Bounded wait: handle-initiated cancels signal this cv (the
    // cancel_notify hook), but deadline expiry and direct external-token
    // cancels do not, so a short poll backstops them.
    slots_cv_.WaitFor(&slots_mu_, std::chrono::milliseconds(2));
    slot_waiters_.fetch_sub(1, std::memory_order_release);
  }
  free_slots_ -= slots;
  return true;
}

void QueryRuntime::ReleaseWorkers(size_t slots) {
  if (slots == 0) return;
  {
    MutexLock lock(&slots_mu_);
    free_slots_ += slots;
  }
  slots_cv_.SignalAll();
}

bool QueryRuntime::TryReserveOneWorker() {
  MutexLock lock(&slots_mu_);
  // Freed capacity serves blocked whole-plan reservations first; a grant
  // taken under a waiter would hand the waiter's slot to a query that
  // already runs.
  if (slot_waiters_.load(std::memory_order_acquire) > 0) return false;
  if (free_slots_ == 0) return false;
  --free_slots_;
  return true;
}

void QueryRuntime::RebalanceTick() {
  size_t free_now = 0;
  {
    MutexLock lock(&slots_mu_);
    free_now = free_slots_;
  }
  const size_t waiters = slot_waiters_.load(std::memory_order_acquire);
  const size_t queued = admission_.queued_now();
  const bool pressure = waiters > 0 || queued > 0;
  board_.Rebalance(pool_.num_threads(), free_now, pressure,
                   waiters + queued);
  if (options_.metrics != nullptr) {
    options_.metrics->gauge("runtime.pool_idle_threads")
        ->Set(static_cast<int64_t>(pool_.idle_threads()));
  }
}

void QueryRuntime::RebalanceLoop() {
  const auto period = std::chrono::microseconds(
      std::max<uint64_t>(1, options_.rebalance_interval_us));
  while (true) {
    {
      MutexLock lock(&rebalance_mu_);
      if (rebalance_stop_) return;
      rebalance_cv_.WaitFor(&rebalance_mu_, period);
      if (rebalance_stop_) return;
    }
    RebalanceTick();
  }
}

}  // namespace dbs3

#include "server/query_runtime.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace dbs3 {

namespace {

size_t DefaultPoolThreads(size_t configured) {
  if (configured > 0) return configured;
  return std::max<unsigned>(1, std::thread::hardware_concurrency());
}

int64_t Micros(double seconds) {
  return static_cast<int64_t>(seconds * 1e6);
}

}  // namespace

Result<PhaseOutcome> QueryEnv::Run(Plan& plan, const CostModel& cost_model,
                                   const ScheduleOptions& schedule) {
  if (cancel_.ShouldStop()) return cancel_.ToStatus();

  // Scheduler feedback: the live multiprogramming level reduces this
  // phase's thread allocation [Rahm93], so N concurrent queries together
  // apply roughly single-user thread pressure to the machine.
  const ScheduleOptions adjusted = ApplyUtilization(
      schedule, MultiUserUtilization(runtime_->live_queries()));

  PhaseOutcome out;
  DBS3_ASSIGN_OR_RETURN(out.schedule,
                        ScheduleQuery(plan, cost_model, adjusted));
  const size_t total_threads = std::accumulate(
      out.schedule.threads.begin(), out.schedule.threads.end(), size_t{0});

  // Whole-plan reservation against the shared pool; a plan too wide for
  // the pool falls back to private threads (correct, just without the
  // spawn amortization).
  ExecOptions exec;
  exec.cancel = cancel_;
  exec.chunk_pool = &runtime_->chunk_pool_;
  exec.quota = &quota_;
  bool reserved = false;
  if (total_threads <= runtime_->pool_.num_threads()) {
    reserved = runtime_->ReserveWorkers(total_threads, cancel_);
    if (reserved) {
      exec.workers = &runtime_->pool_;
    } else if (cancel_.ShouldStop()) {
      return cancel_.ToStatus();
    }
  }

  Executor executor;
  Result<ExecutionResult> run = executor.Run(plan, exec);
  if (reserved) runtime_->ReleaseWorkers(total_threads);
  DBS3_RETURN_IF_ERROR(run.status());
  out.execution = std::move(run).value();

  // Fold the phase into the query's running stats — cancelled phases too,
  // so a cancelled query reports the partial work it did.
  ++stats_.phases;
  stats_.execution_seconds += out.execution.seconds;
  stats_.units_cancelled += out.execution.units_cancelled;
  for (const OperationStats& op : out.execution.op_stats) {
    stats_.busy_seconds += op.busy_seconds;
    for (uint64_t c : op.per_instance_processed) stats_.units_processed += c;
  }
  if (reserved) stats_.used_shared_pool = true;
  stats_.quota_high_water_units =
      std::max(stats_.quota_high_water_units, quota_.high_water());
  // Roll the phase's spill activity up into the runtime-wide registry, so
  // operators observe spill.bytes_written etc. across all queries.
  if (runtime_->options_.metrics != nullptr) {
    for (const auto& [name, value] : out.execution.metrics.counters) {
      if (name.rfind("spill.", 0) == 0 && value > 0) {
        runtime_->options_.metrics->counter(name)->Add(value);
      }
    }
  }
  if (publish_) publish_(stats_);

  if (!out.execution.completion.ok()) return out.execution.completion;
  return out;
}

QueryRuntime::QueryRuntime(QueryRuntimeOptions options)
    : options_(options),
      pool_(DefaultPoolThreads(options.pool_threads)),
      chunk_pool_(options.chunk_pool_buffers),
      admission_(AdmissionConfig{
          std::max<size_t>(1, options.max_queued_queries),
          options.memory_budget_units}),
      free_slots_(pool_.num_threads()) {
  const size_t drivers = std::max<size_t>(1, options_.max_concurrent_queries);
  drivers_.reserve(drivers);
  for (size_t i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

QueryRuntime::~QueryRuntime() {
  shutdown_.store(true);
  admission_.Shutdown();
  for (auto& d : drivers_) {
    if (d.joinable()) d.join();
  }
  // pool_ destroys after the drivers: every execution has completed, so
  // its queue is empty and the threads exit immediately.
}

QueryHandle QueryRuntime::Submit(QuerySpec spec) {
  auto state = std::make_shared<QueryHandle::State>();
  state->id = next_id_.fetch_add(1);
  state->cancel = spec.cancel.has_value() ? *spec.cancel : CancelToken();
  if (spec.deadline.has_value()) state->cancel.set_deadline(*spec.deadline);
  QueryHandle handle(state);

  // Cancellation wake-up path: a fired token must promptly wake (a) drivers
  // blocked in PopNext holding this query back on the memory budget and
  // (b) ReserveWorkers waits. Installed before enqueue so no cancel can
  // slip between; Complete clears it under the same mutex, and since
  // Complete runs before the runtime's teardown finishes draining, the
  // captured `this` is live whenever the hook can run.
  {
    MutexLock lock(&state->mu);
    state->cancel_notify = [this] {
      admission_.NotifyCancelled();
      { MutexLock slots(&slots_mu_); }
      slots_cv_.SignalAll();
    };
  }

  if (options_.metrics != nullptr) {
    options_.metrics->counter("runtime.queries_submitted")->Add(1);
  }

  PendingQuery pending;
  pending.id = state->id;
  pending.priority = spec.priority;
  pending.memory_units = spec.memory_units;
  pending.cancel = state->cancel;
  pending.enqueued_at = std::chrono::steady_clock::now();
  pending.run = [this, state, memory_units = spec.memory_units,
                 body = std::move(spec.body)](double wait_seconds) mutable {
    QueryRunStats stats;
    stats.admission_wait_seconds = wait_seconds;
    {
      MutexLock lock(&state->mu);
      state->stats = stats;
    }
    if (shutdown_.load()) {
      Complete(state, Status::Cancelled("query runtime shutting down"),
               stats);
      return;
    }
    if (state->cancel.ShouldStop()) {
      // Cancelled or deadline-expired while still queued: complete without
      // executing anything.
      Complete(state, state->cancel.ToStatus(), stats);
      return;
    }
    live_.fetch_add(1);
    QueryEnv env(this, state->cancel, memory_units,
                 [this, state](const QueryRunStats& s) {
                   QueryRunStats merged = s;
                   MutexLock lock(&state->mu);
                   merged.admission_wait_seconds =
                       state->stats.admission_wait_seconds;
                   state->stats = merged;
                 });
    env.stats_.admission_wait_seconds = wait_seconds;
    Result<QueryResult> outcome = body(env);
    live_.fetch_sub(1);
    Complete(state, std::move(outcome), env.stats_);
  };

  const Status queued = admission_.TryEnqueue(std::move(pending));
  if (!queued.ok()) {
    // Shed (or submitted into a shutting-down runtime): the handle
    // completes immediately with the admission error.
    if (options_.metrics != nullptr &&
        queued.code() == StatusCode::kResourceExhausted) {
      options_.metrics->counter("runtime.queries_shed")->Add(1);
    }
    Complete(state, queued, QueryRunStats{});
  }
  return handle;
}

void QueryRuntime::DriverLoop() {
  PendingQuery q;
  while (admission_.PopNext(&q)) {
    const double wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      q.enqueued_at)
            .count();
    q.run(wait_seconds);
    admission_.ReleaseMemory(q.memory_units);
    q = PendingQuery{};
  }
}

void QueryRuntime::Complete(const std::shared_ptr<QueryHandle::State>& state,
                            Result<QueryResult> outcome,
                            const QueryRunStats& stats) {
  if (options_.metrics != nullptr) {
    MetricsRegistry& m = *options_.metrics;
    if (outcome.ok()) {
      m.counter("runtime.queries_completed")->Add(1);
    } else if (outcome.status().code() == StatusCode::kCancelled) {
      m.counter("runtime.queries_cancelled")->Add(1);
    } else if (outcome.status().code() == StatusCode::kDeadlineExceeded) {
      m.counter("runtime.queries_deadline_exceeded")->Add(1);
    }
    if (!outcome.ok()) {
      // A query that failed (cancel/deadline) never reaches the facade's
      // engine-metrics accumulation, so its drained units are credited to
      // the engine-wide ledger counter here.
      m.counter("engine.units_cancelled")->Add(stats.units_cancelled);
    }
    m.summary("runtime.admission_wait_us")
        ->Record(Micros(stats.admission_wait_seconds));
    m.summary("runtime.execution_wall_us")
        ->Record(Micros(stats.execution_seconds));
    m.summary("runtime.busy_us")->Record(Micros(stats.busy_seconds));
    m.summary("runtime.quota_high_water_units")
        ->Record(static_cast<int64_t>(stats.quota_high_water_units));
  }
  {
    MutexLock lock(&state->mu);
    state->stats = stats;
    state->outcome.emplace(std::move(outcome));
    state->done = true;
    // Drop the wake-up hook: after completion nothing waits on this query,
    // and clearing under mu means no Cancel can invoke it against a
    // runtime that has moved on to teardown.
    state->cancel_notify = nullptr;
  }
  state->cv.SignalAll();
}

bool QueryRuntime::ReserveWorkers(size_t slots, const CancelToken& cancel) {
  if (slots == 0) return true;
  if (slots > pool_.num_threads()) return false;
  MutexLock lock(&slots_mu_);
  while (free_slots_ < slots) {
    if (cancel.ShouldStop()) return false;
    // Bounded wait: handle-initiated cancels signal this cv (the
    // cancel_notify hook), but deadline expiry and direct external-token
    // cancels do not, so a short poll backstops them.
    slots_cv_.WaitFor(&slots_mu_, std::chrono::milliseconds(2));
  }
  free_slots_ -= slots;
  return true;
}

void QueryRuntime::ReleaseWorkers(size_t slots) {
  if (slots == 0) return;
  {
    MutexLock lock(&slots_mu_);
    free_slots_ += slots;
  }
  slots_cv_.SignalAll();
}

}  // namespace dbs3

#ifndef DBS3_SERVER_WORKER_POOL_H_
#define DBS3_SERVER_WORKER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/thread_source.h"

namespace dbs3 {

/// The engine-wide worker pool: a fixed set of threads, spawned once,
/// from which every in-flight query's operation workers draw. Replaces
/// the per-query spawn/teardown of Operation::Start — under concurrent
/// load the spawn barrier (one of the paper's three start-up barriers)
/// is paid once per server lifetime instead of once per operation.
///
/// Tasks run in FIFO dispatch order. A dispatched worker loop may block
/// (waiting for activations from its producers), so correctness requires
/// the caller never to have more dispatched-but-unfinished tasks than
/// there are threads; QueryRuntime reserves whole-plan thread counts
/// against the pool's capacity before starting any operation to
/// guarantee it.
class WorkerPool final : public ThreadSource {
 public:
  /// Spawns `num_threads` (>= 1) workers immediately.
  explicit WorkerPool(size_t num_threads);

  /// Calls Shutdown() and joins the threads. All executions drawing on
  /// the pool must have completed.
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Requests shutdown: already-queued tasks still drain (a queued worker
  /// loop belongs to an execution someone is Join()ing on), but any later
  /// Dispatch is rejected — the task is dropped, counted in
  /// tasks_rejected(), and logged. Idempotent; the destructor calls it.
  void Shutdown() EXCLUDES(mu_);

  void Dispatch(std::function<void()> fn) override EXCLUDES(mu_);
  size_t num_threads() const override { return threads_.size(); }

  /// Tasks accepted over the pool's lifetime (a task = one operation
  /// worker loop). Post-shutdown rejections are not counted here.
  uint64_t tasks_dispatched() const { return dispatched_.load(); }

  /// Tasks rejected because Dispatch ran after Shutdown(). Always 0 on a
  /// well-sequenced server (QueryRuntime drains executions first).
  uint64_t tasks_rejected() const { return rejected_.load(); }

  /// Threads not currently running a task (approximate, for the
  /// runtime.pool_idle_threads gauge).
  size_t idle_threads() const {
    const size_t busy = busy_.load(std::memory_order_relaxed);
    const size_t n = threads_.size();
    return n > busy ? n - busy : 0;
  }

  /// Tasks queued but not yet picked up (approximate, for the
  /// runtime.dispatch_queue_depth probe).
  size_t queue_depth() const { return queued_.load(std::memory_order_relaxed); }

 private:
  void ThreadMain() EXCLUDES(mu_);

  Mutex mu_{"WorkerPool::mu"};
  CondVar cv_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> busy_{0};
  std::atomic<size_t> queued_{0};
};

}  // namespace dbs3

#endif  // DBS3_SERVER_WORKER_POOL_H_

#include "server/worker_pool.h"

#include <cassert>
#include <utility>

#include "common/logging.h"

namespace dbs3 {

WorkerPool::WorkerPool(size_t num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this] { ThreadMain(); });
  }
}

WorkerPool::~WorkerPool() {
  Shutdown();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.SignalAll();
}

void WorkerPool::Dispatch(std::function<void()> fn) {
  bool rejected = false;
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      // Explicit post-shutdown contract: the task is dropped, never run.
      // Accepting it silently (the old behavior) either ran it on a thread
      // already asked to exit or — worse — queued it forever.
      rejected = true;
    } else {
      tasks_.push_back(std::move(fn));
      queued_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (rejected) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    DBS3_LOG(kWarning) << "WorkerPool::Dispatch after Shutdown(): task "
                          "rejected (see tasks_rejected())";
    return;
  }
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  cv_.Signal();
}

void WorkerPool::ThreadMain() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (tasks_.empty() && !shutdown_) cv_.Wait(&mu_);
      // Drain outstanding tasks even under shutdown: a queued worker loop
      // belongs to an execution someone is still Join()ing on.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace dbs3

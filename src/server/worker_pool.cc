#include "server/worker_pool.h"

#include <cassert>
#include <utility>

namespace dbs3 {

WorkerPool::WorkerPool(size_t num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this] { ThreadMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.SignalAll();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::Dispatch(std::function<void()> fn) {
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&mu_);
    assert(!shutdown_ && "Dispatch on a shut-down WorkerPool");
    tasks_.push_back(std::move(fn));
  }
  cv_.Signal();
}

void WorkerPool::ThreadMain() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (tasks_.empty() && !shutdown_) cv_.Wait(&mu_);
      // Drain outstanding tasks even under shutdown: a queued worker loop
      // belongs to an execution someone is still Join()ing on.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace dbs3

#ifndef DBS3_SERVER_QUERY_RUNTIME_H_
#define DBS3_SERVER_QUERY_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/memory_quota.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "engine/cancel.h"
#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "sched/scheduler.h"
#include "server/admission.h"
#include "server/pool_load_board.h"
#include "server/query_handle.h"
#include "server/worker_pool.h"

namespace dbs3 {

class QueryRuntime;

/// Sizing of the concurrent query runtime.
struct QueryRuntimeOptions {
  /// Shared worker-pool threads. 0 = hardware concurrency (>= 1).
  size_t pool_threads = 0;
  /// Session slots: queries executing at once (= driver threads). Queries
  /// past this wait in the admission queue.
  size_t max_concurrent_queries = 4;
  /// Waiting room past the session slots; one more is shed with
  /// kResourceExhausted. Generous default so the synchronous facade API
  /// never sheds unexpectedly.
  size_t max_queued_queries = 256;
  /// Memory/queue budget in tuple units shared by running queries (what a
  /// query declares via QuerySpec::memory_units). 0 = unbounded.
  uint64_t memory_budget_units = 0;
  /// When set, the runtime publishes counters (runtime.queries_submitted,
  /// .admitted, .shed, .cancelled, .deadline_exceeded, .completed) and
  /// per-query latency summaries in microseconds
  /// (runtime.admission_wait_us, .execution_wall_us, .busy_us) here. Must
  /// outlive the runtime.
  MetricsRegistry* metrics = nullptr;
  /// Chunk buffers the runtime's shared ChunkPool retains between
  /// executions. The pool is what makes the engine's data path
  /// allocation-lean across queries (the free list stays warm from one
  /// execution to the next); sized to absorb a whole pipeline's in-flight
  /// chunk population at the paper-faithful chunk_size of 1 (one buffer per
  /// tuple in flight). Shrink it to trade steady-state allocations for
  /// memory.
  size_t chunk_pool_buffers = 64 * 1024;
  /// Largest shared-scan batch a driver folds (lead included). 1 turns the
  /// shared-work path off entirely; the default groups compatible queries
  /// whenever they are simultaneously queued.
  size_t shared_batch_max_queries = 8;
  /// Extra microseconds a driver holds a shareable lead open for
  /// compatible stragglers before executing. 0 (default) adds no latency:
  /// only queries already waiting are grouped. The paper-era sweet spot
  /// for lookup floods is 500–2000 us.
  uint64_t shared_batch_window_us = 0;
  /// Steady-state rebalance tick period. 0 (default) = adaptivity off:
  /// thread allocations are frozen at admission, exactly the old
  /// behavior. When > 0, a background tick recomputes the fair share from
  /// the *live* query population and reallocates pooled workers between
  /// running queries: under pressure (admission waiters / blocked
  /// reservations) over-provisioned executions park surplus workers down
  /// to their fair share; with idle capacity and no pressure, clamped
  /// executions are granted extra workers up to their unclamped schedule
  /// width. 500–5000 us works well for mixed short+long workloads.
  uint64_t rebalance_interval_us = 0;
  /// Queued tuple units one worker is considered enough for when the
  /// rebalancer sizes parks (the min grant quantum): an operation's
  /// "needed" worker count is ceil(pending / quantum), and only workers
  /// beyond that are parkable.
  size_t rebalance_quantum_units = 256;
};

/// The outcome of one scheduled-and-executed plan phase.
struct PhaseOutcome {
  ExecutionResult execution;
  ScheduleReport schedule;
};

/// Execution context handed to a running query body. Each phase the body
/// runs goes through Run(), which (a) feeds the live multiprogramming
/// level into the scheduler's utilization factor, (b) reserves whole-plan
/// worker slots on the shared pool — falling back to private threads when
/// the plan wants more threads than the pool has — and (c) threads the
/// query's cancel token into the engine. A fired token surfaces as a
/// Cancelled/DeadlineExceeded error so multi-phase bodies abort their
/// remaining phases naturally.
class QueryEnv {
 public:
  /// Schedules and executes one plan phase. On cancellation/deadline the
  /// partial work is folded into the query's stats and the token's status
  /// is returned as the error.
  Result<PhaseOutcome> Run(Plan& plan, const CostModel& cost_model,
                           const ScheduleOptions& schedule);

  const CancelToken& cancel() const { return cancel_; }

  /// Convenience for bodies doing non-engine work between phases.
  Status CheckCancelled() const { return cancel_.ToStatus(); }

  /// The query's memory quota, sized from QuerySpec::memory_units (0 =
  /// unlimited, tracking only). Every phase run through this env charges
  /// retained operator state here; bodies may consult used()/high_water().
  MemoryQuota& quota() { return quota_; }

 private:
  friend class QueryRuntime;

  QueryEnv(QueryRuntime* runtime, CancelToken cancel, uint64_t memory_units,
           std::function<void(const QueryRunStats&)> publish)
      : runtime_(runtime),
        cancel_(std::move(cancel)),
        quota_(memory_units),
        publish_(std::move(publish)) {}

  QueryRuntime* runtime_;
  CancelToken cancel_;
  /// Outlives every phase's plan (phases are built, run and destroyed
  /// inside the body, which borrows this env) — the ExecOptions::quota
  /// lifetime contract.
  MemoryQuota quota_;
  /// Pushes the running stats into the query's handle after every phase.
  std::function<void(const QueryRunStats&)> publish_;
  QueryRunStats stats_;
};

/// What a query body is: it builds and runs plan phases through the env
/// and packages the final QueryResult. Returning an error (including the
/// env's cancellation error) completes the handle with that status.
using QueryBody = std::function<Result<QueryResult>(QueryEnv&)>;

/// One query submission.
struct QuerySpec {
  QueryBody body;
  /// Higher-priority queries leave the admission queue first.
  int priority = 0;
  /// Declared working-set tuple units, charged against the runtime's
  /// memory budget while the query runs. 0 = free.
  uint64_t memory_units = 0;
  /// Declared thread share (typically the schedule's total_threads), the
  /// CPU half of joint admission: the controller may admit a deliverable
  /// narrow query past an equal-priority wide one that would only block
  /// in thread reservation. 0 = unknown (always CPU-fit). Advisory — it
  /// never changes what the query is allowed to reserve, only when it
  /// leaves the queue.
  size_t threads_hint = 0;
  /// Absolute deadline; expiry (even while queued) completes the query
  /// with DeadlineExceeded.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// External cancel token to share; default = a fresh token (cancel via
  /// the returned handle).
  std::optional<CancelToken> cancel;
  /// Shared-work payload: when set, the admission controller may fold this
  /// query into a multi-query shared-scan batch with other queries of the
  /// same share_class; `body` is then bypassed for the batch path (it still
  /// runs when the query executes solo). Set by the ESQL planner for
  /// shareable scan-only queries.
  std::shared_ptr<const SharedScanSpec> shared;
};

/// The concurrent query runtime: one engine-wide WorkerPool all queries
/// draw from, an admission controller bounding the number of in-flight and
/// waiting queries, and driver threads that run admitted query bodies.
/// Owned by dbs3::Database; Submit is thread-safe from any number of
/// client sessions.
class QueryRuntime {
 public:
  explicit QueryRuntime(QueryRuntimeOptions options = {});

  /// Completes the waiting queue with Cancelled, waits for running
  /// queries, then tears the pool down.
  ~QueryRuntime();

  QueryRuntime(const QueryRuntime&) = delete;
  QueryRuntime& operator=(const QueryRuntime&) = delete;

  /// Queues `spec` and returns immediately. Sheds (handle completes with
  /// ResourceExhausted) when the waiting room is full.
  QueryHandle Submit(QuerySpec spec);

  /// Query bodies currently executing (the scheduler-feedback signal).
  size_t live_queries() const { return live_.load(); }

  WorkerPool& pool() { return pool_; }
  const AdmissionController& admission() const { return admission_; }
  const QueryRuntimeOptions& options() const { return options_; }
  const PoolLoadBoard& load_board() const { return board_; }

  /// The runtime's shared chunk pool: every execution run through a
  /// QueryEnv recycles its data-path buffers here, so the free list one
  /// query warms up serves the next.
  ChunkPool& chunk_pool() { return chunk_pool_; }

 private:
  friend class QueryEnv;

  void DriverLoop();
  void Complete(const std::shared_ptr<QueryHandle::State>& state,
                Result<QueryResult> outcome, const QueryRunStats& stats);

  /// Executes one shared-scan batch (lead + followers popped together):
  /// sheds members whose token/deadline fired while queued, degenerates to
  /// the member's own solo body when only one survives, and otherwise runs
  /// the single multi-query plan and completes every member's handle from
  /// its routed sink. The caller releases each member's admission memory.
  void RunSharedBatch(PendingQuery* lead, std::vector<PendingQuery>* followers,
                      double window_wait_seconds);

  /// Blocks until `slots` worker threads are free on the shared pool and
  /// charges them. False when `cancel` fires first or `slots` exceeds the
  /// pool. Reservations are whole-plan and all-or-nothing, so every
  /// dispatched (possibly blocking) worker loop is backed by a real
  /// thread — the no-deadlock invariant of running plans on a shared pool.
  bool ReserveWorkers(size_t slots, const CancelToken& cancel)
      EXCLUDES(slots_mu_);
  void ReleaseWorkers(size_t slots) EXCLUDES(slots_mu_);

  /// Non-blocking single-slot reservation for rebalancer grants. Refuses
  /// when any whole-plan reservation is waiting (slot_waiters_): freed
  /// capacity must serve blocked admissions before growing running
  /// queries, or a wide waiter could starve behind a stream of grants.
  bool TryReserveOneWorker() EXCLUDES(slots_mu_);

  /// The steady-state tick (rebalance_interval_us > 0 only): reads pool
  /// pressure/idle capacity, lets the board plan+apply park/grant moves,
  /// and refreshes the pool gauges.
  void RebalanceTick() EXCLUDES(slots_mu_);
  void RebalanceLoop();

  QueryRuntimeOptions options_;
  WorkerPool pool_;
  ChunkPool chunk_pool_;
  AdmissionController admission_;
  PoolLoadBoard board_;
  std::atomic<size_t> live_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<bool> shutdown_{false};

  Mutex slots_mu_{"QueryRuntime::slots_mu"};
  CondVar slots_cv_;
  size_t free_slots_ GUARDED_BY(slots_mu_);
  /// Whole-plan reservations currently blocked in ReserveWorkers — the
  /// rebalancer's pressure signal, and TryReserveOneWorker's yield guard.
  std::atomic<size_t> slot_waiters_{0};

  /// Steady-state rebalancer (only spawned when rebalance_interval_us > 0).
  Mutex rebalance_mu_{"QueryRuntime::rebalance_mu"};
  CondVar rebalance_cv_;
  bool rebalance_stop_ GUARDED_BY(rebalance_mu_) = false;
  std::thread rebalancer_;

  /// Samples the dispatch-queue-depth probe into a series while the
  /// runtime lives (only when a metrics registry was supplied).
  std::unique_ptr<MetricsSampler> sampler_;
  bool probes_registered_ = false;

  std::vector<std::thread> drivers_;
};

}  // namespace dbs3

#endif  // DBS3_SERVER_QUERY_RUNTIME_H_

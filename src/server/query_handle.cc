#include "server/query_handle.h"

#include <cassert>
#include <utility>

namespace dbs3 {

uint64_t QueryHandle::id() const {
  return state_ == nullptr ? 0 : state_->id;
}

void QueryHandle::Cancel() const {
  if (state_ == nullptr) return;
  state_->cancel.Cancel();
  // Holding mu while invoking orders the hook against Complete's clear:
  // either the query is still live (hook set, runtime alive for its
  // duration) or Complete already ran and there is nothing to wake.
  MutexLock lock(&state_->mu);
  if (state_->cancel_notify) state_->cancel_notify();
}

const CancelToken& QueryHandle::cancel_token() const {
  assert(state_ != nullptr);
  return state_->cancel;
}

bool QueryHandle::done() const {
  if (state_ == nullptr) return false;
  MutexLock lock(&state_->mu);
  return state_->done;
}

void QueryHandle::Wait() const {
  assert(state_ != nullptr);
  MutexLock lock(&state_->mu);
  while (!state_->done) state_->cv.Wait(&state_->mu);
}

bool QueryHandle::WaitFor(std::chrono::nanoseconds timeout) const {
  assert(state_ != nullptr);
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(&state_->mu);
  while (!state_->done) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= give_up) return false;
    state_->cv.WaitFor(&state_->mu, give_up - now);
  }
  return true;
}

Result<QueryResult> QueryHandle::Take() {
  assert(state_ != nullptr);
  MutexLock lock(&state_->mu);
  while (!state_->done) state_->cv.Wait(&state_->mu);
  if (state_->taken) {
    return Status::FailedPrecondition("query result already taken");
  }
  state_->taken = true;
  Result<QueryResult> out = std::move(*state_->outcome);
  state_->outcome.reset();
  return out;
}

QueryRunStats QueryHandle::stats() const {
  if (state_ == nullptr) return QueryRunStats{};
  MutexLock lock(&state_->mu);
  return state_->stats;
}

}  // namespace dbs3

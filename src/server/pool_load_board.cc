#include "server/pool_load_board.h"

#include <algorithm>
#include <utility>

namespace dbs3 {

uint64_t PoolLoadBoard::Register(MalleableExecution* exec, size_t reserved,
                                 size_t desired) {
  MutexLock lock(&mu_);
  Entry entry;
  entry.id = next_id_++;
  entry.exec = exec;
  entry.reserved = reserved;
  entry.desired = std::max(desired, reserved);
  entries_.push_back(entry);
  return entry.id;
}

RebalanceTotals PoolLoadBoard::Unregister(uint64_t id) {
  MutexLock lock(&mu_);
  RebalanceTotals totals;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id != id) continue;
    totals.active = true;
    totals.granted = it->granted;
    totals.parked = it->parked;
    entries_.erase(it);
    return totals;
  }
  return totals;
}

void PoolLoadBoard::OnWorkerExit(uint64_t id, bool parked) {
  {
    MutexLock lock(&mu_);
    Entry* entry = FindLocked(id);
    if (entry == nullptr) return;  // Never registered here; nothing owed.
    ++entry->exited;
    if (parked) {
      ++entry->parked;
      total_parked_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Credit the freed slot outside the board mutex: the release path
  // signals reservation waiters and must not nest under mu_ longer than
  // necessary. Every exit frees exactly one slot, park or natural drain —
  // that is the per-exit settlement the registration contract promises.
  hooks_.release_thread();
}

PoolLoadBoard::TickReport PoolLoadBoard::Rebalance(size_t pool_threads,
                                                   size_t free_threads,
                                                   bool pressure,
                                                   size_t extra_load) {
  TickReport report;
  MutexLock lock(&mu_);
  if (entries_.empty()) return report;

  std::vector<ExecSnapshot> snapshots;
  snapshots.reserve(entries_.size());
  for (const Entry& e : entries_) {
    ExecSnapshot snap;
    snap.id = e.id;
    // Workers currently holding pool slots for this execution.
    const size_t in = e.reserved + e.granted;
    snap.workers = in > e.exited ? in - e.exited : 0;
    snap.desired = e.desired;
    snapshots.push_back(snap);
  }

  const ReassignPlan plan = PlanReassign(snapshots, pool_threads,
                                         free_threads, pressure, extra_load);

  // Parks: forwarded to the execution, which clamps to what its operations
  // can actually shed (always keeping one worker each). The board mutex is
  // held across the call — lock order board -> operation internals, never
  // the reverse (executions call back only via OnWorkerExit, lock-free on
  // their side).
  for (const ReassignPlan::Move& move : plan.parks) {
    Entry* entry = FindLocked(move.id);
    if (entry == nullptr) continue;
    report.parks_requested += entry->exec->RequestPark(move.count);
  }

  // Grants: one pool slot is taken *before* each dispatch (the grant's
  // worker must never oversubscribe the pool) and returned if the
  // execution refuses (drained, at capacity, or racing its own join).
  for (const ReassignPlan::Move& move : plan.grants) {
    Entry* entry = FindLocked(move.id);
    if (entry == nullptr) continue;
    for (size_t k = 0; k < move.count; ++k) {
      if (!hooks_.try_reserve_thread()) return report;  // Pool dry.
      if (entry->exec->TryGrantWorker()) {
        ++entry->granted;
        total_granted_.fetch_add(1, std::memory_order_relaxed);
        ++report.grants_delivered;
      } else {
        hooks_.release_thread();
        break;  // This execution won't take more; try the next one.
      }
    }
  }
  return report;
}

size_t PoolLoadBoard::live_executions() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

PoolLoadBoard::Entry* PoolLoadBoard::FindLocked(uint64_t id) {
  for (Entry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

}  // namespace dbs3

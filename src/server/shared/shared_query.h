#ifndef DBS3_SERVER_SHARED_SHARED_QUERY_H_
#define DBS3_SERVER_SHARED_SHARED_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "engine/operators.h"
#include "sched/scheduler.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace dbs3 {

/// Everything the runtime needs to fold one submitted query into a
/// multi-query shared-scan plan (SharedDB-style shared work): the relation
/// it scans, its own predicate, and how its slice of the shared pass is
/// projected and materialized. The ESQL planner builds one of these at
/// Submit time for every shareable query (single-relation selection, no
/// aggregates/ordering, no declared memory budget); queries whose spec
/// carries the same nonzero `share_class` may execute as one plan.
///
/// Compatibility contract: two specs with equal share_class scan the same
/// Relation object with the same projection shape and the same vectorize
/// setting. Predicates, result names, deadlines and cancel tokens are
/// per-member — differing predicates are the point of sharing the pass.
struct SharedScanSpec {
  /// The relation the shared pass scans. Must outlive execution (catalog
  /// relations do; the planner only marks catalog scans shareable).
  const Relation* relation = nullptr;
  /// This member's WHERE conjunction (lowered PredExpr when possible).
  Predicate predicate;
  /// Scheduling estimate of the kept fraction.
  double selectivity = 1.0;
  /// Base-relation columns of the member's SELECT list, in output order.
  /// Empty = SELECT * (every column, schema order).
  std::vector<size_t> projection;
  /// Schema of the member's result relation (projected when `projection`
  /// is non-empty, otherwise the base schema).
  Schema result_schema;
  /// Name of the member's materialized result.
  std::string result_name = "esql_result";
  /// Run the batched predicate kernels over each ColumnBatch tile.
  bool vectorize = true;
  /// Scheduling knobs of the member; the batch runs under the lead
  /// member's schedule and cost model.
  ScheduleOptions schedule;
  CostModel cost_model;
  /// Grouping key: equal nonzero classes are batchable. 0 = never shared.
  uint64_t share_class = 0;
};

/// The grouping key for `relation` scans with this projection/vectorize
/// shape. Stable within a process (hashes the relation's identity), always
/// nonzero.
uint64_t ComputeShareClass(const Relation& relation,
                           const std::vector<size_t>& projection,
                           bool vectorize);

}  // namespace dbs3

#endif  // DBS3_SERVER_SHARED_SHARED_QUERY_H_

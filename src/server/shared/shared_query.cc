#include "server/shared/shared_query.h"

#include <functional>

namespace dbs3 {

uint64_t ComputeShareClass(const Relation& relation,
                           const std::vector<size_t>& projection,
                           bool vectorize) {
  // FNV-style mixing over the compatibility-relevant shape. The relation's
  // address pins the exact object (two relations with the same name in
  // different databases must not batch together); the name guards against
  // address reuse across a catalog rebuild within one process.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(reinterpret_cast<uintptr_t>(&relation));
  mix(std::hash<std::string>()(relation.name()));
  mix(projection.size());
  for (size_t c : projection) mix(c);
  mix(vectorize ? 1 : 2);
  return h == 0 ? 1 : h;
}

}  // namespace dbs3

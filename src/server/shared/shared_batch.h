#ifndef DBS3_SERVER_SHARED_SHARED_BATCH_H_
#define DBS3_SERVER_SHARED_SHARED_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/cancel.h"
#include "engine/plan.h"
#include "server/shared/shared_query.h"
#include "server/shared/shared_scan.h"

namespace dbs3 {

/// One multi-query plan built from a batch of compatible SharedScanSpecs:
/// shared-scan → shared-router, same-instance, with one result sink per
/// member. Sinks are hash-partitioned on column 0 with the relation's
/// degree — the exact shape of the solo scan→store plan, so each member's
/// result is fragment-for-fragment identical to solo execution.
struct SharedBatchPlan {
  Plan plan;
  /// Per-member materialized results, index-aligned with the input specs.
  std::vector<std::unique_ptr<Relation>> sinks;
  /// Per-member conservation ledger; audit after a clean drain.
  std::unique_ptr<SharedBatchLedger> ledger;
  /// Physical-plan rendering for QueryResult::detail.
  std::string detail;
};

/// Builds the shared plan for `specs` (>= 1 member, all with the same
/// share_class — enforced). `cancels[i]` is member i's token; its firing
/// mid-run drops only member i's tuples.
Result<SharedBatchPlan> BuildSharedBatchPlan(
    const std::vector<const SharedScanSpec*>& specs,
    const std::vector<CancelToken>& cancels);

}  // namespace dbs3

#endif  // DBS3_SERVER_SHARED_SHARED_BATCH_H_

#ifndef DBS3_SERVER_SHARED_SHARED_SCAN_H_
#define DBS3_SERVER_SHARED_SHARED_SCAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "engine/cancel.h"
#include "engine/operators.h"
#include "storage/relation.h"

namespace dbs3 {

/// Per-query view of the tuple-conservation ledger for one shared batch:
/// every tuple the SharedScan emits for member m must end up either
/// appended to m's result sink or dropped because m's token fired. The
/// engine's own DBS3_VERIFY ledger balances the batch as a whole; this one
/// balances each member, which is what makes "cancelling one member drops
/// only its tagged tuples" auditable.
class SharedBatchLedger {
 public:
  explicit SharedBatchLedger(size_t members)
      : size_(members), entries_(new Entry[members]) {}

  SharedBatchLedger(const SharedBatchLedger&) = delete;
  SharedBatchLedger& operator=(const SharedBatchLedger&) = delete;

  void CountEmitted(size_t member, uint64_t n) {
    entries_[member].emitted.fetch_add(n, std::memory_order_relaxed);
  }
  void CountRouted(size_t member, uint64_t n) {
    entries_[member].routed.fetch_add(n, std::memory_order_relaxed);
  }
  void CountDroppedCancelled(size_t member, uint64_t n) {
    entries_[member].dropped_cancelled.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t emitted(size_t member) const {
    return entries_[member].emitted.load(std::memory_order_relaxed);
  }
  uint64_t routed(size_t member) const {
    return entries_[member].routed.load(std::memory_order_relaxed);
  }
  uint64_t dropped_cancelled(size_t member) const {
    return entries_[member].dropped_cancelled.load(std::memory_order_relaxed);
  }

  size_t size() const { return size_; }

  /// Per-member conservation audit: emitted == routed + dropped for every
  /// member. Internal error naming the first unbalanced member otherwise.
  /// Only meaningful after the execution drained cleanly (an engine-level
  /// abort legitimately strands in-flight chunks between scan and router).
  Status Audit() const;

 private:
  struct Entry {
    std::atomic<uint64_t> emitted{0};
    std::atomic<uint64_t> routed{0};
    std::atomic<uint64_t> dropped_cancelled{0};
  };

  size_t size_;
  std::unique_ptr<Entry[]> entries_;
};

/// One query riding a shared scan.
struct SharedScanMember {
  /// The member's WHERE conjunction (evaluated against every tile).
  Predicate predicate;
  /// Scheduling estimate of the member's kept fraction.
  double selectivity = 1.0;
  /// The member's cancel token: once fired, the scan stops emitting this
  /// member's tuples (per-tile check) and the router drops the ones
  /// already in flight.
  CancelToken cancel;
};

/// Triggered multi-query scan (the SharedDB "one pass, N queries" node):
/// the control activation for instance i walks fragment i of the input
/// once, tile by tile, building each ColumnBatch a single time and
/// evaluating every live member's predicate against it. Survivors are
/// emitted tagged — output tuples are [member_id, row...] — so the
/// downstream SharedResultRouterLogic can demultiplex them into per-query
/// sinks. Members whose predicate lowered to the vector IR run through
/// EvalPredAll selection vectors; row-form predicates share the same tile
/// loop on the per-row path.
class SharedScanLogic : public OperatorLogic {
 public:
  /// `input` and `ledger` must outlive the execution.
  SharedScanLogic(const Relation* input, std::vector<SharedScanMember> members,
                  bool vectorize, SharedBatchLedger* ledger);

  Status Prepare(size_t num_instances) override;
  void OnTrigger(size_t instance, Emitter* out) override;
  std::string name() const override { return "shared-scan"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  /// Hot emit loop (dbs3-tidy allocation-free surface): emits the selected
  /// rows of one tile tagged with `member`'s id and credits the ledger.
  void EmitTagged(size_t instance, std::span<const Tuple> rows, size_t base,
                  size_t member, const uint32_t* sel, size_t kept,
                  Emitter* out);

  const Relation* input_;
  std::vector<SharedScanMember> members_;
  bool vectorize_;
  SharedBatchLedger* ledger_;
  /// Prebuilt one-column [member_id] tag rows, so tagging is an EmitConcat
  /// into a recycled chunk slot — no per-tuple tag construction.
  std::vector<Tuple> tags_;
};

/// One member's result sink for the router.
struct SharedRouterSink {
  /// The member's result relation; fragment i receives instance i's rows.
  Relation* result = nullptr;
  /// Columns of the *tagged* tuple to store, in output order (base column
  /// c appears as tagged column c + 1). Precomputed by the batch builder
  /// from the member's projection.
  std::vector<size_t> columns;
  /// Tuples of a cancelled member are dropped (and counted) here rather
  /// than appended — the per-query half of drain-style cancellation.
  CancelToken cancel;
};

/// Pipelined demultiplexer closing a shared-scan plan: reads the member id
/// off each tagged tuple and appends the projected row to that member's
/// result sink (same-instance routing, so fragment order matches a solo
/// scan→store plan). Per-fragment locking mirrors StoreLogic; the ledger
/// gets one routed/dropped credit per tuple, keeping the per-query
/// conservation view balanced.
class SharedResultRouterLogic : public OperatorLogic {
 public:
  /// Sink results and `ledger` must outlive the execution.
  SharedResultRouterLogic(std::vector<SharedRouterSink> sinks,
                          SharedBatchLedger* ledger);

  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked routing: takes the fragment lock once per activation.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "shared-router"; }

 private:
  /// Routes one tagged tuple; caller holds fragment_mu_[instance] (the
  /// dynamic index is inexpressible as a REQUIRES annotation, like
  /// StoreLogic's per-fragment locks).
  void RouteOne(size_t instance, const Tuple& tuple);

  std::vector<SharedRouterSink> sinks_;
  SharedBatchLedger* ledger_;
  /// One lock per routed fragment (dynamically indexed like StoreLogic's;
  /// appends happen only under the matching fragment's lock).
  std::vector<std::unique_ptr<Mutex>> fragment_mu_;
};

}  // namespace dbs3

#endif  // DBS3_SERVER_SHARED_SHARED_SCAN_H_

#include "server/shared/shared_scan.h"

#include <algorithm>
#include <utility>

#include "engine/vector/column_batch.h"
#include "engine/vector/pred.h"

namespace dbs3 {

namespace {

/// Tile size of the shared pass, matching the single-query filter kernels:
/// one ColumnBatch is built per tile and reused for every member's
/// predicate — the shared-work win over N independent scans.
constexpr size_t kSharedScanTile = 1024;

/// Below this, building the column views costs more than it saves (same
/// threshold as the single-query kernels).
constexpr size_t kSharedMinBatchRows = 4;

}  // namespace

Status SharedBatchLedger::Audit() const {
  for (size_t m = 0; m < size_; ++m) {
    const uint64_t e = emitted(m);
    const uint64_t r = routed(m);
    const uint64_t d = dropped_cancelled(m);
    if (e != r + d) {
      return Status::Internal(
          "shared-batch ledger unbalanced for member " + std::to_string(m) +
          ": emitted " + std::to_string(e) + " != routed " +
          std::to_string(r) + " + dropped " + std::to_string(d));
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------- SharedScan

SharedScanLogic::SharedScanLogic(const Relation* input,
                                 std::vector<SharedScanMember> members,
                                 bool vectorize, SharedBatchLedger* ledger)
    : input_(input),
      members_(std::move(members)),
      vectorize_(vectorize),
      ledger_(ledger) {}

Status SharedScanLogic::Prepare(size_t num_instances) {
  if (num_instances > input_->degree()) {
    return Status::InvalidArgument(
        "shared scan has " + std::to_string(num_instances) +
        " instances but relation '" + input_->name() + "' has only " +
        std::to_string(input_->degree()) + " fragments");
  }
  if (members_.size() != ledger_->size()) {
    return Status::InvalidArgument("shared scan member/ledger size mismatch");
  }
  tags_.clear();
  tags_.reserve(members_.size());
  for (size_t m = 0; m < members_.size(); ++m) {
    tags_.emplace_back(
        std::vector<Value>{Value(static_cast<int64_t>(m))});
  }
  return Status::OK();
}

void SharedScanLogic::EmitTagged(size_t instance, std::span<const Tuple> rows,
                                 size_t base, size_t member,
                                 const uint32_t* sel, size_t kept,
                                 Emitter* out) {
  const Tuple& tag = tags_[member];
  for (size_t i = 0; i < kept; ++i) {
    // [member_id, row...] into a recycled chunk slot; the router strips the
    // tag again. Zero allocations in steady state.
    out->EmitConcat(instance, tag, rows[base + sel[i]]);
  }
  ledger_->CountEmitted(member, kept);
}

void SharedScanLogic::OnTrigger(size_t instance, Emitter* out) {
  const std::vector<Tuple>& rows = input_->fragment(instance).tuples;
  const size_t num_members = members_.size();
  Arena& arena = ThreadLocalKernelArena();
  for (size_t tile = 0; tile < rows.size(); tile += kSharedScanTile) {
    const size_t count = std::min(kSharedScanTile, rows.size() - tile);
    ScopedArena scope(&arena);
    // One column view shared by every member's predicate — the pass over
    // the fragment's memory happens once regardless of the batch size.
    ColumnBatch batch(std::span<const Tuple>(rows.data() + tile, count),
                      &arena);
    uint32_t* sel = arena.AllocateArrayOf<uint32_t>(count);
    bool any_live = false;
    for (size_t m = 0; m < num_members; ++m) {
      const SharedScanMember& member = members_[m];
      // Per-tile member cancel check: a fired token stops this member's
      // share of the pass; the other members keep scanning.
      if (member.cancel.ShouldStop()) continue;
      any_live = true;
      size_t kept = 0;
      if (member.predicate.expr.has_value()) {
        const PredExpr& expr = *member.predicate.expr;
        if (vectorize_ && count >= kSharedMinBatchRows) {
          kept = EvalPredAll(expr, batch, sel);
        } else {
          for (size_t i = 0; i < count; ++i) {
            if (expr.EvalRow(rows[tile + i])) {
              sel[kept++] = static_cast<uint32_t>(i);
            }
          }
        }
      } else {
        const TuplePredicate& keep = member.predicate.row;
        for (size_t i = 0; i < count; ++i) {
          if (keep(rows[tile + i])) sel[kept++] = static_cast<uint32_t>(i);
        }
      }
      EmitTagged(instance, rows, tile, m, sel, kept, out);
    }
    if (!any_live) return;  // Every member cancelled: the pass is moot.
  }
}

NodeEstimate SharedScanLogic::Estimate(const CostModel& cost_model,
                                       double input_tuples) const {
  (void)input_tuples;  // Triggered: work comes from the fragments.
  NodeEstimate e;
  const double members = static_cast<double>(members_.size());
  double output = 0.0;
  for (const SharedScanMember& m : members_) {
    output += m.selectivity * static_cast<double>(input_->cardinality());
  }
  // The pass reads each tuple once but evaluates N predicates on it; the
  // scheduler sees roughly the per-member filter work without the N
  // repeated fragment reads.
  e.total_work =
      static_cast<double>(input_->cardinality()) * cost_model.scan_tuple *
      std::max(1.0, members * 0.5);
  e.activations = 0.0;
  e.output_tuples = output;
  for (uint64_t c : input_->FragmentCardinalities()) {
    e.per_instance_work.push_back(static_cast<double>(c) *
                                  cost_model.scan_tuple *
                                  std::max(1.0, members * 0.5));
  }
  return e;
}

// ----------------------------------------------------------- ResultRouter

SharedResultRouterLogic::SharedResultRouterLogic(
    std::vector<SharedRouterSink> sinks, SharedBatchLedger* ledger)
    : sinks_(std::move(sinks)), ledger_(ledger) {}

Status SharedResultRouterLogic::Prepare(size_t num_instances) {
  if (sinks_.size() != ledger_->size()) {
    return Status::InvalidArgument("shared router sink/ledger size mismatch");
  }
  for (const SharedRouterSink& sink : sinks_) {
    if (sink.result == nullptr) {
      return Status::InvalidArgument("shared router sink has no result");
    }
    if (num_instances > sink.result->degree()) {
      return Status::InvalidArgument(
          "shared router has " + std::to_string(num_instances) +
          " instances but sink '" + sink.result->name() + "' has only " +
          std::to_string(sink.result->degree()) + " fragments");
    }
  }
  fragment_mu_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    fragment_mu_.push_back(
        std::make_unique<Mutex>("SharedResultRouterLogic::fragment_mu"));
  }
  return Status::OK();
}

void SharedResultRouterLogic::RouteOne(size_t instance, const Tuple& tuple) {
  const size_t member = static_cast<size_t>(tuple.at(0).AsInt());
  SharedRouterSink& sink = sinks_[member];
  if (sink.cancel.ShouldStop()) {
    // Cancelled member: its tagged tuples drain here instead of its sink —
    // the per-query cancelled bucket of the conservation ledger.
    ledger_->CountDroppedCancelled(member, 1);
    return;
  }
  Tuple stored;
  stored.AssignSelect(tuple, sink.columns);
  sink.result->AppendToFragment(instance, std::move(stored));
  ledger_->CountRouted(member, 1);
}

void SharedResultRouterLogic::OnData(size_t instance, Tuple tuple,
                                     Emitter* out) {
  (void)out;
  MutexLock lock(fragment_mu_[instance].get());
  RouteOne(instance, tuple);
}

void SharedResultRouterLogic::OnDataBatch(size_t instance,
                                          std::span<Tuple> tuples,
                                          Emitter* out) {
  (void)out;
  MutexLock lock(fragment_mu_[instance].get());
  for (const Tuple& t : tuples) RouteOne(instance, t);
}

}  // namespace dbs3

#include "server/shared/shared_batch.h"

#include <utility>

namespace dbs3 {

Result<SharedBatchPlan> BuildSharedBatchPlan(
    const std::vector<const SharedScanSpec*>& specs,
    const std::vector<CancelToken>& cancels) {
  if (specs.empty() || specs.size() != cancels.size()) {
    return Status::InvalidArgument("shared batch needs specs + cancels");
  }
  const SharedScanSpec* lead = specs[0];
  const Relation* rel = lead->relation;
  if (rel == nullptr) {
    return Status::InvalidArgument("shared batch lead has no relation");
  }
  const size_t degree = rel->degree();
  const size_t base_columns = rel->schema().num_columns();

  SharedBatchPlan out;
  out.ledger = std::make_unique<SharedBatchLedger>(specs.size());
  std::vector<SharedScanMember> members;
  std::vector<SharedRouterSink> router_sinks;
  members.reserve(specs.size());
  router_sinks.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const SharedScanSpec* spec = specs[i];
    if (spec->relation != rel || spec->share_class != lead->share_class) {
      // The admission controller groups by share_class alone; this is the
      // defense-in-depth check that the classes really describe one scan.
      return Status::InvalidArgument(
          "incompatible member folded into a shared batch");
    }
    SharedScanMember member;
    member.predicate = spec->predicate;
    member.selectivity = spec->selectivity;
    member.cancel = cancels[i];
    members.push_back(std::move(member));

    auto result = std::make_unique<Relation>(
        spec->result_name, spec->result_schema, /*partition_column=*/0,
        Partitioner(PartitionKind::kHash, degree));
    SharedRouterSink sink;
    sink.result = result.get();
    sink.cancel = cancels[i];
    // Tagged tuples are [member_id, base row...]: base column c sits at
    // tagged position c + 1.
    if (spec->projection.empty()) {
      for (size_t c = 0; c < base_columns; ++c) sink.columns.push_back(c + 1);
    } else {
      for (size_t c : spec->projection) {
        if (c >= base_columns) {
          return Status::InvalidArgument("shared member projection out of "
                                         "range");
        }
        sink.columns.push_back(c + 1);
      }
    }
    router_sinks.push_back(std::move(sink));
    out.sinks.push_back(std::move(result));
  }

  const size_t scan = out.plan.AddNode(
      "shared-scan(" + rel->name() + ")", ActivationMode::kTriggered, degree,
      std::make_unique<SharedScanLogic>(rel, std::move(members),
                                        lead->vectorize, out.ledger.get()));
  const size_t route = out.plan.AddNode(
      "shared-router", ActivationMode::kPipelined, degree,
      std::make_unique<SharedResultRouterLogic>(std::move(router_sinks),
                                                out.ledger.get()));
  DBS3_RETURN_IF_ERROR(out.plan.ConnectSameInstance(scan, route));
  out.detail = "shared-scan(" + rel->name() + ")[" +
               std::to_string(specs.size()) + " queries] ; route";
  return out;
}

}  // namespace dbs3

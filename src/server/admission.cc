#include "server/admission.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace dbs3 {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

Status AdmissionController::TryEnqueue(PendingQuery q) {
  if (config_.memory_budget_units > 0 &&
      q.memory_units > config_.memory_budget_units) {
    // A declaration the whole budget cannot cover would wait forever (and
    // the old clamp admitted it with less memory than it declared it
    // needs — exactly the lie the per-query quota now enforces against).
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "declared memory_units (" + std::to_string(q.memory_units) +
        ") exceeds the admission budget (" +
        std::to_string(config_.memory_budget_units) + ")");
  }
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return Status::Cancelled("admission queue shut down");
    }
    if (waiting_.size() >= config_.max_queued) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission queue full: " + std::to_string(waiting_.size()) +
          " queries already waiting (max_queued=" +
          std::to_string(config_.max_queued) + ")");
    }
    waiting_.push_back(std::move(q));
    seq_.push_back(next_seq_++);
    size_t peak = peak_queued_.load(std::memory_order_relaxed);
    while (peak < waiting_.size() &&
           !peak_queued_.compare_exchange_weak(peak, waiting_.size())) {
    }
  }
  cv_.Signal();
  return Status::OK();
}

namespace {
/// Bypass budget before an equal-priority CPU-unfit waiter wins anyway:
/// bounds how long joint packing can reorder past it, so a wide query is
/// delayed but never starved.
constexpr size_t kMaxCpuBypasses = 16;
}  // namespace

size_t AdmissionController::BestAdmissibleLocked() {
  // Best admissible entry: highest priority, FIFO within a priority,
  // skipping entries whose memory reservation does not fit — except
  // cancelled ones, which are handed out unconditionally so their
  // handles complete without waiting on budget they will never use.
  //
  // Joint CPU+memory mode additionally tracks the best entry that is also
  // CPU-fit (its declared thread share is deliverable from the pool's free
  // capacity right now). When the two differ at equal priority, the
  // CPU-fit one is preferred — that is the multi-resource packing: a
  // narrow query slips past a wide one that would only block in thread
  // reservation. The preference is advisory (never blocks anyone) and
  // aged via cpu_bypasses so the wide query cannot starve.
  const bool cpu_aware =
      config_.pool_threads > 0 && config_.free_threads != nullptr;
  // One hook call per scan: it takes the runtime's slot mutex.
  const size_t free_now = cpu_aware ? config_.free_threads() : 0;
  size_t best = waiting_.size();
  size_t best_cpu = waiting_.size();
  for (size_t i = 0; i < waiting_.size(); ++i) {
    const bool fits = config_.memory_budget_units == 0 ||
                      waiting_[i].memory_units + memory_in_use_ <=
                          config_.memory_budget_units ||
                      waiting_[i].cancel.ShouldStop();
    if (!fits) continue;
    if (best == waiting_.size() ||
        waiting_[i].priority > waiting_[best].priority ||
        (waiting_[i].priority == waiting_[best].priority &&
         seq_[i] < seq_[best])) {
      best = i;
    }
    if (!cpu_aware) continue;
    // Wider-than-pool declarations are CPU-fit by definition: the runtime
    // admits them in fallback mode (private threads), so holding them for
    // free pool capacity they will never use would be wrong. Cancelled
    // entries consume no threads.
    const size_t hint = waiting_[i].threads_hint;
    const bool cpu_fits = hint == 0 || hint > config_.pool_threads ||
                          hint <= free_now ||
                          waiting_[i].cancel.ShouldStop();
    if (!cpu_fits) continue;
    if (best_cpu == waiting_.size() ||
        waiting_[i].priority > waiting_[best_cpu].priority ||
        (waiting_[i].priority == waiting_[best_cpu].priority &&
         seq_[i] < seq_[best_cpu])) {
      best_cpu = i;
    }
  }
  if (cpu_aware && best_cpu < waiting_.size() && best_cpu != best &&
      best < waiting_.size() &&
      waiting_[best_cpu].priority == waiting_[best].priority &&
      waiting_[best].cpu_bypasses < kMaxCpuBypasses) {
    ++waiting_[best].cpu_bypasses;
    return best_cpu;
  }
  return best;
}

void AdmissionController::TakeLocked(size_t index, PendingQuery* out) {
  *out = std::move(waiting_[index]);
  waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(index));
  seq_.erase(seq_.begin() + static_cast<ptrdiff_t>(index));
  if (out->cancel.ShouldStop()) {
    // Nothing charged; zero the reservation so the caller's paired
    // ReleaseMemory is a no-op.
    out->memory_units = 0;
  } else {
    memory_in_use_ += out->memory_units;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
}

void AdmissionController::CollectShareClassLocked(
    uint64_t share_class, size_t max_followers,
    std::vector<PendingQuery>* followers) {
  for (size_t i = 0; i < waiting_.size() && followers->size() < max_followers;) {
    if (waiting_[i].share_class != share_class) {
      ++i;
      continue;
    }
    const bool fits = config_.memory_budget_units == 0 ||
                      waiting_[i].memory_units + memory_in_use_ <=
                          config_.memory_budget_units ||
                      waiting_[i].cancel.ShouldStop();
    if (!fits) {
      // Stays queued for a later batch rather than stalling this one.
      ++i;
      continue;
    }
    PendingQuery taken;
    TakeLocked(i, &taken);
    followers->push_back(std::move(taken));
    // No ++i: TakeLocked's erase shifted the next candidate down to i.
  }
}

bool AdmissionController::PopNext(PendingQuery* out) {
  std::vector<PendingQuery> followers;
  // max_queries = 1 disables grouping; this is exactly the old PopNext.
  return PopNextBatch(out, &followers, BatchWindow{}, nullptr);
}

bool AdmissionController::PopNextBatch(PendingQuery* lead,
                                       std::vector<PendingQuery>* followers,
                                       const BatchWindow& window,
                                       double* window_wait_seconds) {
  followers->clear();
  if (window_wait_seconds != nullptr) *window_wait_seconds = 0.0;
  MutexLock lock(&mu_);
  while (true) {
    const size_t best = BestAdmissibleLocked();
    if (best < waiting_.size()) {
      TakeLocked(best, lead);
      if (lead->share_class != 0 && window.max_queries > 1 &&
          !lead->cancel.ShouldStop()) {
        const auto window_start = std::chrono::steady_clock::now();
        CollectShareClassLocked(lead->share_class, window.max_queries - 1,
                                followers);
        if (window.window.count() > 0) {
          // Hold the batch open for stragglers. Signals on cv_ (enqueues,
          // cancels, releases) re-collect; shutdown and the lead's own
          // token abort the wait — a dying lead must not hold followers.
          const auto close_at = window_start + window.window;
          while (followers->size() + 1 < window.max_queries && !shutdown_ &&
                 !lead->cancel.ShouldStop()) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= close_at) break;
            cv_.WaitFor(&mu_, close_at - now);
            CollectShareClassLocked(lead->share_class,
                                    window.max_queries - 1, followers);
          }
        }
        if (window_wait_seconds != nullptr) {
          *window_wait_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            window_start)
                  .count();
        }
      }
      return true;
    }
    if (shutdown_ && waiting_.empty()) return false;
    // Explicit cancellations signal this cv (NotifyCancelled, called by
    // the runtime's cancel path), so the wait needs no poll interval —
    // only a timeout at the nearest waiting deadline, which fires without
    // any signal. No deadlines pending = a plain unbounded wait (this was
    // a 2 ms poll loop; idle drivers burned wakeups and a cancelled
    // queued query waited up to a full period for handout).
    int64_t nearest_deadline_ns = 0;
    for (const PendingQuery& w : waiting_) {
      const int64_t d = w.cancel.deadline_ns();
      if (d > 0 && (nearest_deadline_ns == 0 || d < nearest_deadline_ns)) {
        nearest_deadline_ns = d;
      }
    }
    if (nearest_deadline_ns == 0) {
      cv_.Wait(&mu_);
    } else {
      const int64_t now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      if (nearest_deadline_ns > now_ns) {
        cv_.WaitFor(&mu_,
                    std::chrono::nanoseconds(nearest_deadline_ns - now_ns));
      }
      // Deadline already passed: loop; the re-scan sees ShouldStop latch.
    }
  }
}

void AdmissionController::ReleaseMemory(uint64_t units) {
  if (units == 0) return;
  {
    MutexLock lock(&mu_);
    memory_in_use_ -= std::min(memory_in_use_, units);
  }
  cv_.SignalAll();
}

void AdmissionController::NotifyCancelled() {
  // Empty critical section: a waiter between its predicate re-scan and its
  // cv wait holds mu_, so passing through the lock orders this signal
  // after that scan — the classic missed-wakeup fence.
  { MutexLock lock(&mu_); }
  cv_.SignalAll();
}

void AdmissionController::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.SignalAll();
}

size_t AdmissionController::queued_now() const {
  MutexLock lock(&mu_);
  return waiting_.size();
}

}  // namespace dbs3

#include "server/admission.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace dbs3 {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

Status AdmissionController::TryEnqueue(PendingQuery q) {
  if (config_.memory_budget_units > 0 &&
      q.memory_units > config_.memory_budget_units) {
    // A declaration the whole budget cannot cover would wait forever (and
    // the old clamp admitted it with less memory than it declared it
    // needs — exactly the lie the per-query quota now enforces against).
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "declared memory_units (" + std::to_string(q.memory_units) +
        ") exceeds the admission budget (" +
        std::to_string(config_.memory_budget_units) + ")");
  }
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return Status::Cancelled("admission queue shut down");
    }
    if (waiting_.size() >= config_.max_queued) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission queue full: " + std::to_string(waiting_.size()) +
          " queries already waiting (max_queued=" +
          std::to_string(config_.max_queued) + ")");
    }
    waiting_.push_back(std::move(q));
    seq_.push_back(next_seq_++);
    size_t peak = peak_queued_.load(std::memory_order_relaxed);
    while (peak < waiting_.size() &&
           !peak_queued_.compare_exchange_weak(peak, waiting_.size())) {
    }
  }
  cv_.Signal();
  return Status::OK();
}

bool AdmissionController::PopNext(PendingQuery* out) {
  MutexLock lock(&mu_);
  while (true) {
    // Best admissible entry: highest priority, FIFO within a priority,
    // skipping entries whose memory reservation does not fit — except
    // cancelled ones, which are handed out unconditionally so their
    // handles complete without waiting on budget they will never use.
    size_t best = waiting_.size();
    for (size_t i = 0; i < waiting_.size(); ++i) {
      const bool fits =
          config_.memory_budget_units == 0 ||
          waiting_[i].memory_units + memory_in_use_ <=
              config_.memory_budget_units ||
          waiting_[i].cancel.ShouldStop();
      if (!fits) continue;
      if (best == waiting_.size() ||
          waiting_[i].priority > waiting_[best].priority ||
          (waiting_[i].priority == waiting_[best].priority &&
           seq_[i] < seq_[best])) {
        best = i;
      }
    }
    if (best < waiting_.size()) {
      *out = std::move(waiting_[best]);
      waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(best));
      seq_.erase(seq_.begin() + static_cast<ptrdiff_t>(best));
      if (out->cancel.ShouldStop()) {
        // Nothing charged; zero the reservation so the caller's paired
        // ReleaseMemory is a no-op.
        out->memory_units = 0;
      } else {
        memory_in_use_ += out->memory_units;
      }
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (shutdown_ && waiting_.empty()) return false;
    // Explicit cancellations signal this cv (NotifyCancelled, called by
    // the runtime's cancel path), so the wait needs no poll interval —
    // only a timeout at the nearest waiting deadline, which fires without
    // any signal. No deadlines pending = a plain unbounded wait (this was
    // a 2 ms poll loop; idle drivers burned wakeups and a cancelled
    // queued query waited up to a full period for handout).
    int64_t nearest_deadline_ns = 0;
    for (const PendingQuery& w : waiting_) {
      const int64_t d = w.cancel.deadline_ns();
      if (d > 0 && (nearest_deadline_ns == 0 || d < nearest_deadline_ns)) {
        nearest_deadline_ns = d;
      }
    }
    if (nearest_deadline_ns == 0) {
      cv_.Wait(&mu_);
    } else {
      const int64_t now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      if (nearest_deadline_ns > now_ns) {
        cv_.WaitFor(&mu_,
                    std::chrono::nanoseconds(nearest_deadline_ns - now_ns));
      }
      // Deadline already passed: loop; the re-scan sees ShouldStop latch.
    }
  }
}

void AdmissionController::ReleaseMemory(uint64_t units) {
  if (units == 0) return;
  {
    MutexLock lock(&mu_);
    memory_in_use_ -= std::min(memory_in_use_, units);
  }
  cv_.SignalAll();
}

void AdmissionController::NotifyCancelled() {
  // Empty critical section: a waiter between its predicate re-scan and its
  // cv wait holds mu_, so passing through the lock orders this signal
  // after that scan — the classic missed-wakeup fence.
  { MutexLock lock(&mu_); }
  cv_.SignalAll();
}

void AdmissionController::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.SignalAll();
}

size_t AdmissionController::queued_now() const {
  MutexLock lock(&mu_);
  return waiting_.size();
}

}  // namespace dbs3

#ifndef DBS3_SERVER_QUERY_HANDLE_H_
#define DBS3_SERVER_QUERY_HANDLE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "engine/cancel.h"
#include "engine/executor.h"
#include "sched/scheduler.h"
#include "storage/relation.h"

namespace dbs3 {

/// Result of one query execution (materialized relation plus what the
/// scheduler and engine did to produce it).
struct QueryResult {
  /// The materialized result, partitioned like the final operator.
  std::unique_ptr<Relation> result;
  /// Engine timing and per-operation load-balance statistics of the final
  /// (result-producing) phase.
  ExecutionResult execution;
  /// What the scheduler decided for the final phase (threads, strategies,
  /// estimates).
  ScheduleReport schedule;
  /// Free-form description of how the query ran (e.g. the ESQL planner's
  /// physical plan rendering). Empty for plain plan queries.
  std::string detail;
  /// Executions of intermediate phases (ESQL repartition materializations)
  /// in run order; empty for single-phase queries.
  std::vector<ExecutionResult> phases;
};

/// Per-query latency/work breakdown maintained by the runtime. Available
/// (partially) while the query runs and fully once it completes — also for
/// cancelled queries, which report the work done up to the cancel.
struct QueryRunStats {
  /// Seconds between Submit and the driver picking the query up.
  double admission_wait_seconds = 0.0;
  /// Engine wall seconds, summed over the executed phases.
  double execution_seconds = 0.0;
  /// True processing seconds (activation spans), summed over phases.
  double busy_seconds = 0.0;
  /// Tuple units processed / drained-as-cancelled, summed over phases.
  uint64_t units_processed = 0;
  uint64_t units_cancelled = 0;
  /// Phases executed (including the one a cancel interrupted).
  size_t phases = 0;
  /// True when at least one phase ran on the shared worker pool (false =
  /// every phase fell back to private threads).
  bool used_shared_pool = false;
  /// Peak tuple units charged against the query's memory quota across all
  /// phases (0 when the query declared no budget or retained no state).
  uint64_t quota_high_water_units = 0;
  /// Queries that rode the same shared-scan batch as this one, including
  /// this one. 0 = the query ran solo (no shared-work path involved).
  size_t shared_batch_queries = 0;
  /// Seconds the batch's lead driver held the admission window open before
  /// execution started (0 for solo queries and zero-window batches).
  double batch_window_wait_seconds = 0.0;
  /// Steady-state rebalancer activity on this query, summed over phases
  /// (both 0 with rebalance_interval_us = 0): extra pool workers granted
  /// into its executions mid-query, and workers it released early (parked
  /// at an activation boundary so their threads could serve other work).
  uint64_t threads_granted = 0;
  uint64_t threads_released = 0;
};

/// Future-like handle to a submitted query: wait for the outcome, cancel
/// it, observe its stats. Copyable — all copies view the same query.
class QueryHandle {
 public:
  QueryHandle() = default;

  /// Monotonic id assigned at Submit (0 for a default-constructed handle).
  uint64_t id() const;

  /// Requests cooperative cancellation. Idempotent; safe from any thread.
  /// A query already completed is unaffected (Take still returns its
  /// result — cancel-after-completion is a no-op).
  void Cancel() const;

  /// The query's cancel token (shared with the execution).
  const CancelToken& cancel_token() const;

  bool done() const;

  /// Blocks until the query completes.
  void Wait() const;

  /// Blocks up to `timeout`; true when the query completed.
  bool WaitFor(std::chrono::nanoseconds timeout) const;

  /// Blocks until completion and moves the outcome out. One-shot: a second
  /// Take returns FailedPrecondition. Sheds, cancels and deadline expiries
  /// surface here as ResourceExhausted / Cancelled / DeadlineExceeded.
  Result<QueryResult> Take();

  /// Snapshot of the latency/work breakdown (complete once done()).
  QueryRunStats stats() const;

 private:
  friend class QueryRuntime;

  struct State {
    Mutex mu{"QueryHandle::mu"};
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    bool taken GUARDED_BY(mu) = false;
    std::optional<Result<QueryResult>> outcome GUARDED_BY(mu);
    QueryRunStats stats GUARDED_BY(mu);
    CancelToken cancel;
    /// Invoked (under mu) by Cancel after firing the token; the runtime
    /// installs a hook that pokes the admission queue and slot waiters so a
    /// cancelled queued query is handed out promptly. Cleared by the
    /// runtime's Complete, so the hook never outlives the runtime.
    std::function<void()> cancel_notify GUARDED_BY(mu);
    uint64_t id = 0;
  };

  explicit QueryHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace dbs3

#endif  // DBS3_SERVER_QUERY_HANDLE_H_

#ifndef DBS3_SERVER_POOL_LOAD_BOARD_H_
#define DBS3_SERVER_POOL_LOAD_BOARD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/rebalance.h"
#include "sched/reassign.h"

namespace dbs3 {

/// The server's registry of live pool-backed executions and the apply side
/// of the steady-state rebalancer. Each registered execution is a malleable
/// job: the periodic tick (QueryRuntime::RebalanceLoop) snapshots worker
/// counts, asks PlanReassign for park/grant moves, and applies them here —
/// parks via MalleableExecution::RequestPark, grants by taking one pool
/// slot through the hooks and dispatching a worker into the execution.
///
/// Slot accounting contract: a registered execution's reservation is
/// settled per worker exit (OnWorkerExit releases one slot each), not as a
/// whole at the end — that is what lets a parked worker's thread serve a
/// waiter while its execution is still running. RebalanceTotals::active
/// tells the query path which settlement applies.
class PoolLoadBoard final : public ExecutionBoard {
 public:
  /// How the board touches the pool's slot ledger; both must be callable
  /// from worker threads and from the rebalance tick. try_reserve_thread
  /// takes one slot (false = none free or waiters have priority);
  /// release_thread returns one.
  struct Hooks {
    std::function<bool()> try_reserve_thread;
    std::function<void()> release_thread;
  };

  /// What one rebalance tick did (for logging/metrics).
  struct TickReport {
    size_t parks_requested = 0;
    size_t grants_delivered = 0;
  };

  explicit PoolLoadBoard(Hooks hooks) : hooks_(std::move(hooks)) {}

  PoolLoadBoard(const PoolLoadBoard&) = delete;
  PoolLoadBoard& operator=(const PoolLoadBoard&) = delete;

  // ExecutionBoard:
  uint64_t Register(MalleableExecution* exec, size_t reserved,
                    size_t desired) override EXCLUDES(mu_);
  RebalanceTotals Unregister(uint64_t id) override EXCLUDES(mu_);
  void OnWorkerExit(uint64_t id, bool parked) override EXCLUDES(mu_);

  /// One steady-state tick: snapshot the live executions, plan, apply.
  /// `pressure` = someone is waiting on pool capacity (admission queue or
  /// a blocked slot reservation); `extra_load` counts those waiters for
  /// the fair-share computation. Serialized against Register/Unregister
  /// by the board mutex — a granted worker can never land on an execution
  /// that already unregistered.
  TickReport Rebalance(size_t pool_threads, size_t free_threads,
                       bool pressure, size_t extra_load) EXCLUDES(mu_);

  size_t live_executions() const EXCLUDES(mu_);

  /// Lifetime totals across all executions (runtime.threads_* counters).
  uint64_t total_granted() const { return total_granted_.load(); }
  uint64_t total_parked() const { return total_parked_.load(); }

 private:
  struct Entry {
    uint64_t id = 0;
    MalleableExecution* exec = nullptr;
    /// Pool slots reserved at admission.
    size_t reserved = 0;
    /// Unclamped schedule width (grant ceiling).
    size_t desired = 0;
    /// Extra workers granted in, worker exits seen, parks among them.
    size_t granted = 0;
    size_t exited = 0;
    size_t parked = 0;
  };

  Entry* FindLocked(uint64_t id) REQUIRES(mu_);

  mutable Mutex mu_{"PoolLoadBoard::mu"};
  std::vector<Entry> entries_ GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  Hooks hooks_;
  std::atomic<uint64_t> total_granted_{0};
  std::atomic<uint64_t> total_parked_{0};
};

}  // namespace dbs3

#endif  // DBS3_SERVER_POOL_LOAD_BOARD_H_

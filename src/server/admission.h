#ifndef DBS3_SERVER_ADMISSION_H_
#define DBS3_SERVER_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/cancel.h"

namespace dbs3 {

/// Load-shedding and budget limits for the admission queue.
struct AdmissionConfig {
  /// Queries allowed to wait for a driver. One past this is shed with
  /// kResourceExhausted instead of queued (bounding worst-case queue time
  /// under overload). Generous by default so the synchronous facade API
  /// never sheds unexpectedly.
  size_t max_queued = 256;
  /// Memory/queue budget in tuple units shared by the running queries.
  /// A query declares its working-set units at submit; the controller
  /// withholds it from a driver until the budget covers it. 0 = unbounded.
  uint64_t memory_budget_units = 0;
};

/// One waiting query, as the runtime enqueues it. The controller is
/// agnostic to what `run` does — the runtime packs the whole drive-this-
/// query sequence into it.
struct PendingQuery {
  uint64_t id = 0;
  /// Higher runs sooner; ties dequeue FIFO.
  int priority = 0;
  /// Declared working-set size in tuple units. A declaration larger than
  /// the controller's whole budget is shed at enqueue with
  /// kResourceExhausted — it could never admit, and silently clamping it
  /// (the old behavior) admitted the query with a reservation smaller than
  /// what it declared it needs.
  uint64_t memory_units = 0;
  CancelToken cancel;
  std::chrono::steady_clock::time_point enqueued_at;
  /// Runs the query; receives the measured admission wait in seconds.
  std::function<void(double)> run;
};

/// The admission queue between Submit and the driver threads: bounded
/// waiting room (excess load shed), priority-then-FIFO dequeue order, and
/// a unit-denominated memory budget that gates when the head query may
/// start. Driver-side concurrency (session slots) is bounded by the number
/// of driver threads calling PopNext, not here.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Queues `q`, or sheds it with ResourceExhausted when the waiting room
  /// is full. Never blocks.
  Status TryEnqueue(PendingQuery q) EXCLUDES(mu_);

  /// Blocks until a query is admissible (best priority/FIFO entry whose
  /// memory reservation fits the remaining budget) and pops it into
  /// `*out`, charging its reservation. Returns false once shut down AND
  /// drained — after Shutdown, queued entries are still handed out so
  /// their handles can be completed. A cancelled waiter is handed out
  /// immediately regardless of budget (its runner sees the fired token and
  /// completes without executing, so it must not wait for memory).
  bool PopNext(PendingQuery* out) EXCLUDES(mu_);

  /// Returns a popped query's reservation to the budget.
  void ReleaseMemory(uint64_t units) EXCLUDES(mu_);

  /// Wakes blocked PopNext callers so they re-scan for cancelled entries.
  /// The runtime calls this from the cancellation path; without it a
  /// waiter blocked on the memory budget would only notice a fired token
  /// at its next deadline-sized (or indefinite) wait.
  void NotifyCancelled() EXCLUDES(mu_);

  /// Wakes every blocked PopNext; they drain the queue then return false.
  void Shutdown() EXCLUDES(mu_);

  /// Monitoring counters (exact under the controller's own lock).
  uint64_t queries_shed() const { return shed_.load(); }
  uint64_t queries_admitted() const { return admitted_.load(); }
  size_t peak_queued() const { return peak_queued_.load(); }
  size_t queued_now() const EXCLUDES(mu_);

 private:
  AdmissionConfig config_;
  mutable Mutex mu_{"AdmissionController::mu"};
  CondVar cv_;
  std::vector<PendingQuery> waiting_ GUARDED_BY(mu_);
  uint64_t memory_in_use_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  /// Enqueue order per entry, for FIFO ties (index-aligned with waiting_).
  std::vector<uint64_t> seq_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<size_t> peak_queued_{0};
};

}  // namespace dbs3

#endif  // DBS3_SERVER_ADMISSION_H_

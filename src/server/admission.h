#ifndef DBS3_SERVER_ADMISSION_H_
#define DBS3_SERVER_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/cancel.h"
#include "server/query_handle.h"

namespace dbs3 {

struct SharedScanSpec;  // server/shared/shared_query.h

/// Load-shedding and budget limits for the admission queue.
struct AdmissionConfig {
  /// Queries allowed to wait for a driver. One past this is shed with
  /// kResourceExhausted instead of queued (bounding worst-case queue time
  /// under overload). Generous by default so the synchronous facade API
  /// never sheds unexpectedly.
  size_t max_queued = 256;
  /// Memory/queue budget in tuple units shared by the running queries.
  /// A query declares its working-set units at submit; the controller
  /// withholds it from a driver until the budget covers it. 0 = unbounded.
  uint64_t memory_budget_units = 0;
  /// Joint CPU+memory packing (Garofalakis/Ioannidis-style multi-resource
  /// admission): with both set, a waiter whose declared thread share
  /// (PendingQuery::threads_hint) currently fits the pool's free capacity
  /// may be admitted ahead of an equal-priority earlier waiter that would
  /// have to block on thread reservation — CPU and memory are packed
  /// together instead of serially. Advisory only: the bypassed waiter is
  /// aged (kMaxCpuBypasses) so it can never starve, and CPU fit never
  /// *blocks* an admission (the reservation path still does the real
  /// waiting). pool_threads = 0 or a null hook = memory-only admission.
  size_t pool_threads = 0;
  std::function<size_t()> free_threads;
};

/// One waiting query, as the runtime enqueues it. The controller is
/// agnostic to what `run` does — the runtime packs the whole drive-this-
/// query sequence into it.
struct PendingQuery {
  uint64_t id = 0;
  /// Higher runs sooner; ties dequeue FIFO.
  int priority = 0;
  /// Declared working-set size in tuple units. A declaration larger than
  /// the controller's whole budget is shed at enqueue with
  /// kResourceExhausted — it could never admit, and silently clamping it
  /// (the old behavior) admitted the query with a reservation smaller than
  /// what it declared it needs.
  uint64_t memory_units = 0;
  /// Declared thread share (the clamped schedule's total), for joint
  /// CPU+memory admission. 0 = unknown: the query is always CPU-fit.
  size_t threads_hint = 0;
  /// Times an equal-priority CPU-fit waiter was admitted past this one
  /// (controller-internal aging; see AdmissionConfig::pool_threads).
  size_t cpu_bypasses = 0;
  CancelToken cancel;
  std::chrono::steady_clock::time_point enqueued_at;
  /// Runs the query; receives the measured admission wait in seconds.
  std::function<void(double)> run;
  /// Shared-work grouping key (0 = not shareable). The controller groups
  /// waiting queries by this opaque value only — compatibility semantics
  /// live with whoever computed it (the ESQL planner).
  uint64_t share_class = 0;
  /// The shared-scan payload when shareable; what the runtime's batch path
  /// builds the multi-query plan from. Opaque to the controller.
  std::shared_ptr<const SharedScanSpec> shared;
  /// Completes the query's handle without running `run` — the batch path's
  /// per-member completion channel (stats/outcome per member).
  std::function<void(Result<QueryResult>, const QueryRunStats&)> finish;
};

/// How long a driver popping a shareable query holds it open for
/// compatible followers, and the largest batch it folds.
struct BatchWindow {
  /// Extra wait for stragglers once a shareable lead popped. 0 = group
  /// only queries already waiting (no added latency).
  std::chrono::microseconds window{0};
  /// Queries per batch, lead included. 1 = batching off.
  size_t max_queries = 1;
};

/// The admission queue between Submit and the driver threads: bounded
/// waiting room (excess load shed), priority-then-FIFO dequeue order, and
/// a unit-denominated memory budget that gates when the head query may
/// start. Driver-side concurrency (session slots) is bounded by the number
/// of driver threads calling PopNext, not here.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Queues `q`, or sheds it with ResourceExhausted when the waiting room
  /// is full. Never blocks.
  Status TryEnqueue(PendingQuery q) EXCLUDES(mu_);

  /// Blocks until a query is admissible (best priority/FIFO entry whose
  /// memory reservation fits the remaining budget) and pops it into
  /// `*out`, charging its reservation. Returns false once shut down AND
  /// drained — after Shutdown, queued entries are still handed out so
  /// their handles can be completed. A cancelled waiter is handed out
  /// immediately regardless of budget (its runner sees the fired token and
  /// completes without executing, so it must not wait for memory).
  bool PopNext(PendingQuery* out) EXCLUDES(mu_);

  /// PopNext plus shared-work grouping: after taking an admissible lead,
  /// if it is shareable (share_class != 0) and `window.max_queries` > 1,
  /// pulls same-class waiters into `*followers` (FIFO, charged like any
  /// admission) and — when `window.window` > 0 — keeps the batch open for
  /// stragglers until it fills or the window closes. The wait aborts early
  /// on shutdown or when the lead's own token fires (a dying lead must not
  /// hold followers hostage). `*window_wait_seconds` (optional) reports how
  /// long the lead was held after its pop. A non-shareable lead returns
  /// immediately with no followers, identical to PopNext.
  bool PopNextBatch(PendingQuery* lead, std::vector<PendingQuery>* followers,
                    const BatchWindow& window, double* window_wait_seconds)
      EXCLUDES(mu_);

  /// Returns a popped query's reservation to the budget.
  void ReleaseMemory(uint64_t units) EXCLUDES(mu_);

  /// Wakes blocked PopNext callers so they re-scan for cancelled entries.
  /// The runtime calls this from the cancellation path; without it a
  /// waiter blocked on the memory budget would only notice a fired token
  /// at its next deadline-sized (or indefinite) wait.
  void NotifyCancelled() EXCLUDES(mu_);

  /// Wakes every blocked PopNext; they drain the queue then return false.
  void Shutdown() EXCLUDES(mu_);

  /// Monitoring counters (exact under the controller's own lock).
  uint64_t queries_shed() const { return shed_.load(); }
  uint64_t queries_admitted() const { return admitted_.load(); }
  size_t peak_queued() const { return peak_queued_.load(); }
  size_t queued_now() const EXCLUDES(mu_);

 private:
  /// Index of the best admissible waiter (priority, then FIFO, cancelled
  /// entries always admissible), or waiting_.size() when none fits.
  /// Non-const: joint CPU+memory mode ages the bypassed head
  /// (cpu_bypasses) when a CPU-fit peer is preferred over it.
  size_t BestAdmissibleLocked() REQUIRES(mu_);
  /// Removes waiting_[index] into `*out`, charging its reservation (zeroed
  /// instead when its token already fired) and counting the admission.
  void TakeLocked(size_t index, PendingQuery* out) REQUIRES(mu_);
  /// Moves up to `max_followers` waiters with `share_class` into
  /// `*followers` (FIFO order), skipping any whose reservation does not
  /// currently fit the budget — those stay queued for a later batch rather
  /// than stalling this one.
  void CollectShareClassLocked(uint64_t share_class, size_t max_followers,
                               std::vector<PendingQuery>* followers)
      REQUIRES(mu_);

  AdmissionConfig config_;
  mutable Mutex mu_{"AdmissionController::mu"};
  CondVar cv_;
  std::vector<PendingQuery> waiting_ GUARDED_BY(mu_);
  uint64_t memory_in_use_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  /// Enqueue order per entry, for FIFO ties (index-aligned with waiting_).
  std::vector<uint64_t> seq_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<size_t> peak_queued_{0};
};

}  // namespace dbs3

#endif  // DBS3_SERVER_ADMISSION_H_

// Scenario: a city-of-residence table where 'Paris' dominates (the paper's
// own attribute-value-skew example). Partitioning on the skewed attribute
// produces fragments of wildly different sizes; this example shows how the
// DBS3 execution model keeps the join balanced anyway, comparing
// consumption strategies and degrees of partitioning on the simulated
// 72-node KSR1.
//
//   $ ./build/examples/skew_tuning [zipf]

#include <cstdio>
#include <cstdlib>

#include "model/analysis.h"
#include "sim/machine.h"
#include "sim/workload.h"

namespace {

double RunOnce(dbs3::JoinWorkloadSpec spec, const dbs3::SimCosts& costs) {
  auto plan = dbs3::BuildIdealJoinSim(spec, costs);
  if (!plan.ok()) {
    std::fprintf(stderr, "build: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }
  dbs3::SimMachineConfig config;
  config.processors = 70;
  config.thread_startup_cost = costs.thread_startup;
  config.queue_create_cost = costs.queue_create;
  config.queue_scan_cost = costs.queue_scan;
  dbs3::SimMachine machine(config);
  auto result = machine.Run(plan.value());
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return result.value().elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbs3;
  const double zipf = argc > 1 ? std::atof(argv[1]) : 0.8;
  std::printf("residents(200K) JOIN cities(20K), tuple placement skew "
              "Zipf=%.2f, 20 threads\n\n",
              zipf);

  SimCosts costs;
  JoinWorkloadSpec spec;
  spec.a_cardinality = 200'000;
  spec.b_cardinality = 20'000;
  spec.theta = zipf;
  spec.threads = 20;
  spec.algorithm = JoinAlgorithm::kNestedLoop;

  // Step 1: a modest degree of partitioning, Random consumption — the
  // naive configuration.
  spec.degree = 40;
  spec.strategy = Strategy::kRandom;
  const double naive = RunOnce(spec, costs);

  // Step 2: switch the triggered join to LPT (process the biggest
  // fragments first).
  spec.strategy = Strategy::kLpt;
  const double lpt = RunOnce(spec, costs);

  // Step 3: raise the degree of partitioning — smaller sequential units of
  // work let LPT pack the load evenly (Section 5.6.2 of the paper).
  spec.degree = 400;
  const double fine = RunOnce(spec, costs);

  // The analytical floor.
  auto profile = JoinProfile(spec, costs, /*pipelined=*/false);
  const double ideal = TIdeal(profile.value(), 20);

  std::printf("%-44s %10.2f s\n", "degree  40, Random:", naive);
  std::printf("%-44s %10.2f s  (%.0f%% faster)\n", "degree  40, LPT:", lpt,
              100.0 * (1.0 - lpt / naive));
  std::printf("%-44s %10.2f s  (%.0f%% faster)\n",
              "degree 400, LPT:", fine, 100.0 * (1.0 - fine / naive));
  std::printf("%-44s %10.2f s\n", "analytical ideal (perfect balance):",
              ideal);

  std::printf("\nadvice: for triggered operations over skewed data, use LPT "
              "and a degree of\npartitioning well above the thread count — "
              "the overhead is ~%.1f ms per extra\nfragment, far below the "
              "imbalance it removes.\n",
              costs.queue_create * 1e3);
  return 0;
}

// The Wisconsin benchmark queries [Bitton83] — the workload family the
// paper measures with — expressed in ESQL and executed in parallel:
// selections of several selectivities, a projection, joins and an
// aggregation, with per-query physical plans and timings.
//
//   $ ./build/examples/wisconsin_queries [cardinality] [degree]

#include <cstdio>
#include <cstdlib>

#include "esql/planner.h"

namespace {

void Run(dbs3::Database& db, const char* label, const std::string& query) {
  dbs3::EsqlOptions options;
  options.schedule.processors = 8;
  auto result = dbs3::ExecuteEsql(db, query, options);
  if (!result.ok()) {
    std::printf("%-28s ERROR %s\n", label,
                result.status().ToString().c_str());
    return;
  }
  std::printf("%-28s %8llu rows %8.1f ms  [%s]\n", label,
              static_cast<unsigned long long>(
                  result.value().result->cardinality()),
              result.value().execution.seconds * 1e3,
              result.value().physical_plan.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbs3;
  const uint64_t cardinality =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10'000;
  const size_t degree = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;

  Database db(8);
  WisconsinOptions opt;
  opt.cardinality = cardinality;
  opt.degree = degree;
  opt.partition_column = "unique1";
  opt.partition_kind = PartitionKind::kModulo;
  if (!db.CreateWisconsin("tenktup1", opt).ok()) return 1;
  opt.seed = 7;
  if (!db.CreateWisconsin("tenktup2", opt).ok()) return 1;
  std::printf("Wisconsin relations: tenktup1, tenktup2 (%llu tuples, %zu "
              "fragments)\n\n",
              static_cast<unsigned long long>(cardinality), degree);

  // Query 1/3-style selections (1% and 10% selectivity).
  Run(db, "1% selection",
      "SELECT * FROM tenktup1 WHERE onePercent = 5");
  Run(db, "10% selection",
      "SELECT * FROM tenktup1 WHERE tenPercent = 5");
  // Range selection on the key.
  Run(db, "key range",
      "SELECT * FROM tenktup1 WHERE unique1 < 1000");
  // Projection (1% of columns... well, two of them).
  Run(db, "projection",
      "SELECT unique1, onePercent FROM tenktup1 WHERE twentyPercent = 3");
  // JoinAselB: co-partitioned key join with a selection.
  Run(db, "JoinAselB",
      "SELECT * FROM tenktup1 JOIN tenktup2 ON tenktup1.unique1 = "
      "tenktup2.unique1 WHERE tenktup2.tenPercent = 1");
  // Plain key join (IdealJoin-able).
  Run(db, "key join",
      "SELECT * FROM tenktup1 JOIN tenktup2 ON tenktup1.unique1 = "
      "tenktup2.unique1");
  // Aggregates: MIN on the key, grouped aggregation on onePercent.
  Run(db, "MIN(unique1)", "SELECT MIN(unique1) FROM tenktup1");
  Run(db, "grouped SUM",
      "SELECT onePercent, SUM(unique2) FROM tenktup1 GROUP BY onePercent");
  // Sorted output.
  Run(db, "sorted selection",
      "SELECT unique1 FROM tenktup1 WHERE onePercent = 7 "
      "ORDER BY unique1");
  return 0;
}

// An interactive ESQL shell over a demo database — type queries, get
// parallel execution with the planner's physical strategy printed.
//
//   $ ./build/examples/esql_shell
//   dbs3> SELECT city, COUNT(*) AS n FROM residents GROUP BY city ORDER BY n DESC
//
// The demo database models the paper's own skew example: a residents
// relation where 'Paris' dominates the city column (attribute value skew),
// plus a cities relation keyed by city id.
//
// Pass queries as arguments to run non-interactively:
//   $ ./build/examples/esql_shell "SELECT COUNT(*) FROM residents"

#include <cstdio>
#include <iostream>
#include <string>

#include "common/zipf.h"
#include "esql/planner.h"

namespace {

constexpr const char* kCityNames[] = {
    "Paris",    "Marseille", "Lyon",     "Toulouse", "Nice",
    "Nantes",   "Montpellier", "Strasbourg", "Bordeaux", "Lille",
    "Rennes",   "Reims",     "Toulon",   "Grenoble", "Dijon",
    "Angers",   "Nimes",     "Cannes",   "Avignon",  "Annecy"};
constexpr size_t kCities = sizeof(kCityNames) / sizeof(kCityNames[0]);

dbs3::Status BuildDemoDatabase(dbs3::Database* db) {
  using namespace dbs3;
  const size_t degree = 16;

  // cities(id, name, region): partitioned on id.
  auto cities = std::make_unique<Relation>(
      "cities",
      Schema({{"id", ValueType::kInt64},
              {"name", ValueType::kString},
              {"region", ValueType::kInt64}}),
      0, Partitioner(PartitionKind::kModulo, degree));
  for (size_t c = 0; c < kCities; ++c) {
    DBS3_RETURN_IF_ERROR(cities->Insert(
        Tuple({Value(static_cast<int64_t>(c)), Value(std::string(kCityNames[c])),
               Value(static_cast<int64_t>(c % 5))})));
  }
  DBS3_RETURN_IF_ERROR(db->AddRelation(std::move(cities)));

  // residents(id, city_id, age, income): city frequencies follow Zipf —
  // 'Paris' is far more frequent than 'Cannes' (the paper's AVS example).
  auto residents = std::make_unique<Relation>(
      "residents",
      Schema({{"id", ValueType::kInt64},
              {"city_id", ValueType::kInt64},
              {"age", ValueType::kInt64},
              {"income", ValueType::kInt64}}),
      0, Partitioner(PartitionKind::kModulo, degree));
  ZipfSampler city_sampler(kCities, 0.9);
  Rng rng(2026);
  for (int64_t id = 0; id < 50'000; ++id) {
    const int64_t city = static_cast<int64_t>(city_sampler.Sample(rng));
    const int64_t age = rng.Range(0, 99);
    const int64_t income = rng.Range(10'000, 120'000);
    DBS3_RETURN_IF_ERROR(residents->Insert(
        Tuple({Value(id), Value(city), Value(age), Value(income)})));
  }
  return db->AddRelation(std::move(residents));
}

void RunQuery(dbs3::Database& db, const std::string& query) {
  dbs3::EsqlOptions options;
  options.schedule.processors = 8;
  auto result = dbs3::ExecuteEsql(db, query, options);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  const dbs3::Relation& rel = *result.value().result;
  // Header.
  std::printf("physical: %s  (%zu phase%s, %zu threads, %.1f ms)\n",
              result.value().physical_plan.c_str(), result.value().phases,
              result.value().phases > 1 ? "s" : "",
              result.value().schedule.total_threads,
              result.value().execution.seconds * 1e3);
  for (const dbs3::Column& c : rel.schema().columns()) {
    std::printf("%-16s", c.name.c_str());
  }
  std::printf("\n");
  // Rows (capped for the terminal).
  constexpr size_t kMaxRows = 20;
  size_t shown = 0;
  for (const dbs3::Tuple& t : rel.Scan()) {
    if (shown++ >= kMaxRows) break;
    for (const dbs3::Value& v : t.values()) {
      std::printf("%-16s", v.ToString().c_str());
    }
    std::printf("\n");
  }
  const uint64_t total = rel.cardinality();
  if (total > kMaxRows) {
    std::printf("... (%llu rows total)\n",
                static_cast<unsigned long long>(total));
  } else {
    std::printf("(%llu rows)\n", static_cast<unsigned long long>(total));
  }
}

}  // namespace

int main(int argc, char** argv) {
  dbs3::Database db(8);
  const dbs3::Status status = BuildDemoDatabase(&db);
  if (!status.ok()) {
    std::fprintf(stderr, "demo database: %s\n", status.ToString().c_str());
    return 1;
  }

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::printf("dbs3> %s\n", argv[i]);
      RunQuery(db, argv[i]);
    }
    return 0;
  }

  std::printf("DBS3 ESQL shell — demo relations: residents(id, city_id, "
              "age, income), cities(id, name, region)\n");
  std::printf("try: SELECT city_id, COUNT(*) AS n FROM residents GROUP BY "
              "city_id ORDER BY n DESC\n");
  std::string line;
  while (true) {
    std::printf("dbs3> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "quit" || line == "exit" || line == "\\q") break;
    if (line.empty()) continue;
    RunQuery(db, line);
  }
  return 0;
}

// Multi-user execution: the paper's step 1 reduces a query's thread count
// by the average processor utilization to raise multi-user throughput
// [Rahm93]. This example runs several concurrent join queries on the real
// engine, once greedily (every query sized as if alone) and once with the
// utilization factor applied, and compares total completion time on the
// host machine.
//
//   $ ./build/examples/multiuser_throughput [clients]

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <thread>
#include <vector>

#include "dbs3/database.h"
#include "dbs3/query.h"

namespace {

double RunClients(dbs3::Database& db, int clients, double utilization) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  std::vector<dbs3::Status> statuses(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&db, &statuses, c, utilization] {
      dbs3::QueryOptions options;
      options.schedule.processors = 8;
      options.schedule.startup_cost = 5'000.0;
      options.schedule.utilization = utilization;
      options.algorithm = dbs3::JoinAlgorithm::kNestedLoop;
      options.result_name = "res_" + std::to_string(c);
      auto r = dbs3::RunAssocJoin(db, "B", "key", "A", "key", options);
      statuses[static_cast<size_t>(c)] = r.status();
    });
  }
  for (auto& w : workers) w.join();
  for (const dbs3::Status& s : statuses) {
    if (!s.ok()) {
      std::fprintf(stderr, "client failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;

  dbs3::Database db(4);
  dbs3::SkewSpec spec;
  spec.a_cardinality = 20'000;
  spec.b_cardinality = 2'000;
  spec.degree = 32;
  spec.theta = 0.5;
  if (!db.CreateSkewedPair(spec, "A", "B").ok()) return 1;

  std::printf("%d concurrent AssocJoin clients on the host machine\n\n",
              clients);
  const double greedy = RunClients(db, clients, /*utilization=*/1.0);
  std::printf("greedy sizing    (utilization 1.0): %.2f s total\n", greedy);
  const double polite = RunClients(db, clients, /*utilization=*/0.5);
  std::printf("reduced sizing   (utilization 0.5): %.2f s total\n", polite);
  std::printf("\nwith more clients than processors, reducing each query's "
              "thread count cuts\nscheduling interference; on a large "
              "shared-memory node the reduced sizing wins\nthroughput at a "
              "small response-time cost (Section 3, step 1 of the paper).\n");
  return 0;
}

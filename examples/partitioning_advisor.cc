// Partitioning advisor: given a workload (relation sizes, skew, thread
// budget, join algorithm), sweep the degree of partitioning on the
// simulated machine and recommend the degree minimizing response time —
// automating the tuning study of Section 5.6.
//
//   $ ./build/examples/partitioning_advisor [a_card] [b_card] [zipf]
//         [threads] [nl|index]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sim/machine.h"
#include "sim/workload.h"

namespace {

double Simulate(const dbs3::JoinWorkloadSpec& spec,
                const dbs3::SimCosts& costs) {
  auto plan = dbs3::BuildIdealJoinSim(spec, costs);
  if (!plan.ok()) return -1.0;
  dbs3::SimMachineConfig config;
  config.processors = 70;
  config.thread_startup_cost = costs.thread_startup;
  config.queue_create_cost = costs.queue_create;
  config.queue_scan_cost = costs.queue_scan;
  dbs3::SimMachine machine(config);
  auto result = machine.Run(plan.value());
  return result.ok() ? result.value().elapsed : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbs3;
  JoinWorkloadSpec spec;
  spec.a_cardinality = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 500'000;
  spec.b_cardinality = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                : 50'000;
  spec.theta = argc > 3 ? std::atof(argv[3]) : 0.6;
  spec.threads = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 20;
  spec.algorithm = (argc > 5 && std::strcmp(argv[5], "nl") == 0)
                       ? JoinAlgorithm::kNestedLoop
                       : JoinAlgorithm::kTempIndex;
  spec.strategy = Strategy::kLpt;

  std::printf("advising degree of partitioning for IdealJoin:\n");
  std::printf("  |A| = %llu, |B| = %llu, skew Zipf=%.2f, %zu threads, %s\n\n",
              static_cast<unsigned long long>(spec.a_cardinality),
              static_cast<unsigned long long>(spec.b_cardinality),
              spec.theta, spec.threads,
              JoinAlgorithmName(spec.algorithm));

  SimCosts costs;
  std::printf("%10s %14s\n", "degree", "time(s)");
  double best_time = -1.0;
  size_t best_degree = 0;
  for (size_t degree = spec.threads; degree <= 2'000;
       degree = degree < 100 ? degree * 2 : degree + 200) {
    if (spec.b_cardinality < degree) break;
    spec.degree = degree;
    const double t = Simulate(spec, costs);
    if (t < 0) continue;
    std::printf("%10zu %14.2f%s\n", degree, t,
                (best_time < 0 || t < best_time) ? "  <-" : "");
    if (best_time < 0 || t < best_time) {
      best_time = t;
      best_degree = degree;
    }
  }
  std::printf("\nrecommended degree of partitioning: %zu (%.2f s)\n",
              best_degree, best_time);
  std::printf("constraint honored: degree >= degree of parallelism (%zu)\n",
              spec.threads);
  return 0;
}

// Quickstart: build a database, run parallel queries, inspect the
// scheduler's decisions.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API: generating Wisconsin benchmark
// relations, a parallel selection, an IdealJoin (co-partitioned operands)
// and an AssocJoin (dynamic repartitioning), printing the adaptive
// scheduling decisions (threads per operation, consumption strategy) along
// the way.

#include <cstdio>

#include "dbs3/database.h"
#include "dbs3/query.h"

namespace {

void Check(const dbs3::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace dbs3;

  // 1. A database with 8 simulated disks. Relations are hash-partitioned
  //    into fragments placed round-robin on the disks; the degree of
  //    partitioning (16 here) is independent of the disk count.
  Database db(/*num_disks=*/8);

  WisconsinOptions wisconsin;
  wisconsin.cardinality = 20'000;
  wisconsin.degree = 16;
  wisconsin.partition_column = "unique1";
  Check(db.CreateWisconsin("tenk1", wisconsin), "create tenk1");
  wisconsin.seed = 7;
  Check(db.CreateWisconsin("tenk2", wisconsin), "create tenk2");
  std::printf("created %s and %s (20K tuples, 16 fragments each)\n",
              "tenk1", "tenk2");

  // 2. A parallel selection: 1%-selectivity predicate on the onePercent
  //    column. The scheduler picks the thread count from the query's
  //    estimated complexity (Section 3 of the paper).
  Relation* tenk1 = db.relation("tenk1").value();
  const size_t one_percent =
      tenk1->schema().IndexOf("onePercent").value();
  QueryOptions select_options;
  select_options.schedule.processors = 8;
  select_options.result_name = "selected";
  auto select = RunSelect(db, "tenk1",
                          ColumnEquals(one_percent, Value(int64_t{42})),
                          /*selectivity=*/0.01, select_options);
  Check(select.status(), "select");
  std::printf("\nselection kept %llu tuples in %.1f ms using %zu threads\n",
              static_cast<unsigned long long>(
                  select.value().result->cardinality()),
              select.value().execution.seconds * 1e3,
              select.value().schedule.total_threads);

  // 3. IdealJoin: both relations are hash-partitioned on unique1 with the
  //    same degree, so join instance i joins fragment i with fragment i —
  //    no data movement at all.
  QueryOptions join_options;
  join_options.schedule.total_threads = 8;
  join_options.schedule.processors = 8;
  join_options.algorithm = JoinAlgorithm::kHash;
  join_options.result_name = "ideal_result";
  auto ideal = RunIdealJoin(db, "tenk1", "unique1", "tenk2", "unique1",
                            join_options);
  Check(ideal.status(), "ideal join");
  std::printf("\nIdealJoin produced %llu tuples in %.1f ms\n",
              static_cast<unsigned long long>(
                  ideal.value().result->cardinality()),
              ideal.value().execution.seconds * 1e3);
  std::printf("scheduler decisions:\n%s",
              ideal.value().schedule.ToString().c_str());

  // 4. AssocJoin: tenk2 is redistributed on the fly (Transmit operator)
  //    and pipelined into the join — one data activation per tuple, the
  //    fine granularity that makes pipelined operations insensitive to
  //    skew.
  join_options.result_name = "assoc_result";
  auto assoc = RunAssocJoin(db, "tenk2", "unique1", "tenk1", "unique1",
                            join_options);
  Check(assoc.status(), "assoc join");
  std::printf("\nAssocJoin produced %llu tuples in %.1f ms\n",
              static_cast<unsigned long long>(
                  assoc.value().result->cardinality()),
              assoc.value().execution.seconds * 1e3);
  const auto& ops = assoc.value().execution.op_stats;
  for (const auto& op : ops) {
    uint64_t processed = 0;
    for (uint64_t c : op.per_thread_processed) processed += c;
    std::printf("  %-10s processed %8llu activations, emitted %8llu\n",
                op.name.c_str(),
                static_cast<unsigned long long>(processed),
                static_cast<unsigned long long>(op.emitted));
  }

  // 5. Results are ordinary relations: register and reuse them.
  Check(db.AddRelation(std::move(ideal.value().result)), "register result");
  std::printf("\nregistered 'ideal_result'; catalog now holds:");
  for (const std::string& name : db.catalog().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 0;
}

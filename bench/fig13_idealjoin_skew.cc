// Reproduces Figure 13: IdealJoin execution time vs. skew factor, Random
// vs. LPT consumption strategy.
//
// Paper setup: same databases as Figure 12 (A=100K Zipf-skewed, B'=10K,
// 200 fragments), IdealJoin (triggered, nested loop) with 10 threads.
// Expected shape: both strategies flat below Zipf~0.4; past it Random grows
// while LPT stays within ~2% of ideal up to 0.8; past 0.8 both are bounded
// below by the longest activation Pmax.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "model/analysis.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

double RunOne(const JoinWorkloadSpec& spec, const SimCosts& costs,
              bool use_main_queues) {
  SimPlanSpec plan = UnwrapOrDie(BuildIdealJoinSim(spec, costs), "build");
  SimMachineConfig config = KsrConfig(costs);
  config.use_main_queues = use_main_queues;
  SimMachine machine(config);
  return UnwrapOrDie(machine.Run(plan), "run").elapsed;
}

void Run(bool ablate_main_queues) {
  PrintHeader("Figure 13",
              "IdealJoin execution time vs skew, Random vs LPT");
  std::printf("A=100K, B'=10K, degree=200, threads=10, nested loop\n");
  std::printf("paper: LPT flat (<2%% over ideal) to Zipf 0.8, then bounded "
              "by Pmax; Random degrades earlier\n\n");
  std::printf("%6s %12s %12s %12s %12s\n", "zipf", "Random(s)", "LPT(s)",
              "Tworst(s)", "Pmax(s)");

  SimCosts costs;
  for (int z = 0; z <= 10; ++z) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 100'000;
    spec.b_cardinality = 10'000;
    spec.degree = 200;
    spec.theta = 0.1 * z;
    spec.threads = 10;

    spec.strategy = Strategy::kRandom;
    const double t_random = RunOne(spec, costs, !ablate_main_queues);
    spec.strategy = Strategy::kLpt;
    const double t_lpt = RunOne(spec, costs, !ablate_main_queues);

    OperationProfile profile =
        UnwrapOrDie(JoinProfile(spec, costs, /*pipelined=*/false), "profile");
    std::printf("%6.1f %12.2f %12.2f %12.2f %12.2f\n", spec.theta, t_random,
                t_lpt, TWorst(profile, spec.threads), profile.max_cost);
  }
  if (ablate_main_queues) {
    std::printf("\n(ablation: main/secondary queue split disabled)\n");
  }
}

}  // namespace
}  // namespace dbs3

int main(int argc, char** argv) {
  bool ablate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ablate-main-queues") == 0) ablate = true;
  }
  dbs3::Run(ablate);
  return 0;
}

// Extension: DBS3 on two shared-memory machines (Section 5.1/5.2 and
// [Dageville94]): the Encore Multimax (10 processors, physically shared
// uniform memory) vs. the KSR1 (72 processors, Allcache virtually shared
// memory with remote-access penalties).
//
// The paper reports "attractive performance on the KSR1 and similar
// speed-up for the two implementations": within the Encore's processor
// range the speed-up curves coincide (the Allcache surcharge is a small,
// parallelizable constant), while the KSR1 keeps scaling far past 10
// processors.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

double RunScan(size_t threads, size_t processors, bool allcache_remote,
               const SimCosts& costs) {
  ScanWorkloadSpec spec;
  spec.cardinality = 200'000;
  spec.degree = 200;
  spec.threads = threads;
  spec.remote = allcache_remote;
  SimPlanSpec plan = UnwrapOrDie(BuildScanSim(spec, costs), "build");
  SimMachine machine(KsrConfig(costs, processors));
  return UnwrapOrDie(machine.Run(plan), "run").elapsed;
}

void Run() {
  PrintHeader("Extension: Encore Multimax vs KSR1",
              "200K-tuple selection speed-up on both machines");
  std::printf("Encore: 10 processors, uniform shared memory. KSR1: 70 "
              "processors, Allcache\n(remote first-touch surcharge). "
              "[Dageville94]: similar speed-up on both.\n\n");

  SimCosts costs;
  const double tseq = RunScan(1, 1, false, costs);
  std::printf("%8s %14s %14s %12s\n", "threads", "Encore", "KSR1",
              "ratio");
  for (size_t n : {1ul, 2ul, 5ul, 10ul, 20ul, 40ul, 70ul}) {
    // Encore cannot exceed its 10 processors; the KSR1 pays Allcache
    // shipping on first touch.
    const double encore = tseq / RunScan(n, 10, false, costs);
    const double ksr = tseq / RunScan(n, 70, true, costs);
    std::printf("%8zu %14.1f %14.1f %11.2f\n", n, encore, ksr,
                ksr / encore);
  }
  std::printf("\nwithin the Encore's range the curves coincide (ratio ~1); "
              "past 10 threads only\nthe KSR1 keeps scaling — the paper's "
              "portability claim.\n");
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Reproduces Figures 8 and 9: impact of the KSR1 Allcache remote accesses
// on a parallel selection.
//
// Paper setup (Section 5.2): selection over the 200K-tuple DewittA relation
// of the Wisconsin benchmark, 5..30 threads. Tl = execution with all data
// already in the local caches; Tr = execution where every 128-byte subpage
// is shipped from a remote cache on first touch (6x local access cost).
// Expected: Tr - Tl is ~4% of the total time and decreases with the thread
// count (the shipping cost parallelizes); below 5 threads a local execution
// is infeasible (per-thread share exceeds the 32 MB local cache).

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

void Run() {
  PrintHeader("Figures 8 & 9",
              "Remote vs local execution of a 200K-tuple selection");
  std::printf("Wisconsin 200K scan (208 B/tuple), 200 fragments, threads "
              "5..30\n");
  std::printf("paper: Tr - Tl ~ 4%% of total, decreasing with threads\n\n");
  std::printf("%8s %10s %10s %12s %12s %8s\n", "threads", "Tl(s)", "Tr(s)",
              "Tr-Tl(ms)", "overhead", "local?");

  SimCosts costs;
  for (size_t n = 5; n <= 30; n += 5) {
    ScanWorkloadSpec spec;
    spec.cardinality = 200'000;
    spec.tuple_bytes = 208;
    spec.degree = 200;
    spec.threads = n;

    spec.remote = false;
    SimPlanSpec local = UnwrapOrDie(BuildScanSim(spec, costs), "build");
    spec.remote = true;
    SimPlanSpec remote = UnwrapOrDie(BuildScanSim(spec, costs), "build");

    SimMachine machine(KsrConfig(costs, /*processors=*/30));
    const double tl = UnwrapOrDie(machine.Run(local), "run").elapsed;
    SimMachine machine2(KsrConfig(costs, /*processors=*/30));
    const double tr = UnwrapOrDie(machine2.Run(remote), "run").elapsed;

    const bool local_feasible = spec.allcache.LocalFeasible(
        spec.cardinality * spec.tuple_bytes, n);
    // Below the feasibility threshold a local execution cannot be obtained:
    // the measured "local" time equals the remote one (paper: "under 5
    // threads, Tr is equal to Tl").
    const double tl_measured = local_feasible ? tl : tr;
    std::printf("%8zu %10.3f %10.3f %12.1f %11.1f%% %8s\n", n, tl_measured,
                tr, (tr - tl_measured) * 1e3,
                100.0 * (tr - tl_measured) / tr,
                local_feasible ? "yes" : "no");
  }
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Extension: steady-state adaptive scheduling — tail latency of short
// point lookups arriving while a long scan-heavy query holds the whole
// worker pool, mid-query rebalancing on vs off.
//
// One long query (a wide spin-heavy filter over a 128-fragment relation,
// scheduled at the full pool width) runs for a couple of seconds while
// short single-thread lookups against a separate small relation arrive on
// a paced open loop. With rebalancing off (rebalance_interval_us = 0,
// the static pre-adaptive behavior) every short blocks in whole-plan slot
// reservation until the long query drains: short tail latency is the
// long query's remaining wall time. With rebalancing on, the blocked
// reservation registers as pressure, the long query parks workers down to
// its recomputed fair share at the next activation boundary, the shorts
// run, and the parked width is granted back once the pressure clears.
//
// Per mode the flood runs kReps times: long wall is best-of, short
// latencies pool across reps for nearest-rank percentiles. Every rep
// checks results (long cardinality, each lookup's key) — a scheduler that
// drops or duplicates work while parking/granting fails as MISMATCH, not
// as a perf number.
//
// Writes BENCH_adaptive.json next to the binary; the CI gate
// (compare_bench.py --adaptive) requires results to match, adaptive
// short p95/p99 below static, the long wall within 5% of static, and the
// rebalancer to have actually parked and granted workers (else VACUOUS).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "dbs3/database.h"
#include "dbs3/query.h"
#include "storage/relation.h"
#include "storage/wisconsin.h"

namespace dbs3 {
namespace {

constexpr int kReps = 3;            // Long wall best-of; latencies pooled.
constexpr size_t kPool = 4;         // Worker-pool threads.
constexpr uint64_t kLongRows = 256'000;
constexpr size_t kLongDegree = 128;  // Fine fragments => responsive parks.
constexpr uint32_t kSpinPerTuple = 4'000;  // Per-tuple work of the long scan.
constexpr uint64_t kShortRows = 8'000;
constexpr size_t kShortDegree = 8;
constexpr size_t kMaxShorts = 24;   // Per rep.
constexpr uint64_t kPaceBaseUs = 80'000;   // Open-loop arrival pacing.
constexpr uint64_t kRebalanceUs = 1'000;   // Adaptive tick period.

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return Seconds(std::chrono::steady_clock::now() - t0) * 1e6;
}

/// Nearest-rank percentile over an unsorted latency pool.
double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(v.size()));
  if (rank >= v.size()) rank = v.size() - 1;
  return v[rank];
}

/// The long query: a full-width scan whose per-tuple cost is dominated by
/// `kSpinPerTuple` synthetic work, keeping exactly the even-unique1 half.
QuerySpec LongQuery(Relation* rel) {
  TuplePredicate spin = [](const Tuple& t) {
    volatile uint32_t sink = 0;
    for (uint32_t i = 0; i < kSpinPerTuple; ++i) sink = sink + i;
    return t.at(0).AsInt() % 2 == 0;
  };
  QuerySpec spec;
  spec.threads_hint = kPool;
  spec.body = [rel, spin](QueryEnv& env) -> Result<QueryResult> {
    auto result = std::make_unique<Relation>(
        "res", rel->schema(), rel->partition_column(),
        Partitioner(rel->partitioner().kind(), rel->degree()));
    Plan plan;
    const size_t filter = plan.AddNode(
        "filter", ActivationMode::kTriggered, rel->degree(),
        std::make_unique<FilterLogic>(rel, spin, 0.5));
    const size_t store =
        plan.AddNode("store", ActivationMode::kPipelined, rel->degree(),
                     std::make_unique<StoreLogic>(result.get()));
    DBS3_RETURN_IF_ERROR(plan.ConnectSameInstance(filter, store));
    ScheduleOptions schedule;
    schedule.total_threads = kPool;
    schedule.processors = kPool;
    DBS3_ASSIGN_OR_RETURN(PhaseOutcome phase,
                          env.Run(plan, CostModel{}, schedule));
    QueryResult out;
    out.result = std::move(result);
    out.execution = std::move(phase.execution);
    return out;
  };
  return spec;
}

struct ModeResult {
  double long_wall_s = 0.0;  ///< Best-of-kReps.
  std::vector<double> short_lat_us;
  uint64_t long_parked = 0;
  uint64_t long_granted = 0;
  bool results_match = true;
};

/// One mode: kReps floods of paced shorts under one long query each.
ModeResult RunMode(bool adaptive) {
  ModeResult mode;
  for (int rep = 0; rep < kReps; ++rep) {
    Database db(4);
    WisconsinOptions wlong;
    wlong.cardinality = kLongRows;
    wlong.degree = kLongDegree;
    CheckOk(db.CreateWisconsin("big", wlong), "create big");
    WisconsinOptions wshort;
    wshort.cardinality = kShortRows;
    wshort.degree = kShortDegree;
    CheckOk(db.CreateWisconsin("small", wshort), "create small");
    Relation* big = UnwrapOrDie(db.relation("big"), "big");
    Relation* small = UnwrapOrDie(db.relation("small"), "small");
    const size_t unique1 =
        UnwrapOrDie(small->schema().IndexOf("unique1"), "unique1");

    QueryRuntimeOptions ropt;
    ropt.pool_threads = kPool;
    ropt.max_concurrent_queries = kPool;
    ropt.rebalance_interval_us = adaptive ? kRebalanceUs : 0;
    CheckOk(db.StartRuntime(ropt), "start runtime");

    const auto t0 = std::chrono::steady_clock::now();
    QueryHandle long_handle = db.Submit(LongQuery(big));
    double long_wall_s = 0.0;
    std::thread long_waiter([&long_handle, &long_wall_s, t0] {
      long_handle.Wait();
      long_wall_s = MicrosSince(t0) / 1e6;
    });

    // Paced open loop: shorts arrive while the long query runs, each with
    // its own completion watcher so latency is per-query, not
    // head-of-line. Deterministic jitter stands in for Poisson arrivals.
    std::vector<QueryHandle> shorts;
    std::vector<double> latencies(kMaxShorts, 0.0);
    std::vector<std::thread> watchers;
    std::vector<int64_t> keys;
    size_t n = 0;
    while (n < kMaxShorts && !long_handle.done()) {
      const int64_t key = static_cast<int64_t>((n * 7919) % kShortRows);
      QueryOptions options;
      options.schedule.total_threads = 1;
      options.schedule.processors = 1;
      const auto submit = std::chrono::steady_clock::now();
      shorts.push_back(SubmitSelect(db, "small",
                                    ColumnEquals(unique1, Value(key)),
                                    1.0 / static_cast<double>(kShortRows),
                                    options));
      keys.push_back(key);
      QueryHandle handle = shorts.back();
      watchers.emplace_back([handle, submit, &latencies, n]() mutable {
        handle.Wait();
        latencies[n] = MicrosSince(submit);
      });
      ++n;
      const uint64_t pace = kPaceBaseUs + (n * 7919) % (kPaceBaseUs / 2);
      std::this_thread::sleep_for(std::chrono::microseconds(pace));
    }

    long_waiter.join();
    for (std::thread& w : watchers) w.join();
    for (size_t i = 0; i < n; ++i) mode.short_lat_us.push_back(latencies[i]);

    // Correctness: the long query kept exactly the even-unique1 half;
    // every lookup found exactly its key.
    auto long_taken = long_handle.Take();
    CheckOk(long_taken.status(), "long query");
    if (long_taken.value().result->cardinality() != kLongRows / 2) {
      mode.results_match = false;
      std::fprintf(stderr, "MISMATCH: long cardinality %llu != %llu\n",
                   static_cast<unsigned long long>(
                       long_taken.value().result->cardinality()),
                   static_cast<unsigned long long>(kLongRows / 2));
    }
    for (size_t i = 0; i < n; ++i) {
      auto taken = shorts[i].Take();
      CheckOk(taken.status(), "short query");
      const Relation& res = *taken.value().result;
      bool found = res.cardinality() == 1;
      if (found) {
        for (size_t f = 0; f < res.degree(); ++f) {
          for (const Tuple& t : res.fragment(f).tuples) {
            found = t.at(unique1).AsInt() == keys[i];
          }
        }
      }
      if (!found) {
        mode.results_match = false;
        std::fprintf(stderr, "MISMATCH: lookup unique1=%lld (mode=%s)\n",
                     static_cast<long long>(keys[i]),
                     adaptive ? "adaptive" : "static");
      }
    }

    const QueryRunStats stats = long_handle.stats();
    mode.long_parked += stats.threads_released;
    mode.long_granted += stats.threads_granted;
    if (rep == 0 || long_wall_s < mode.long_wall_s) {
      mode.long_wall_s = long_wall_s;
    }
  }
  return mode;
}

void Run() {
  PrintHeader("EXT adaptive-sched",
              "mid-query worker reallocation: short tails under a long scan");
  std::printf("pool %zu threads, long scan %llu rows x %u spin (degree %zu),"
              " shorts <= %zu/rep paced ~%llums, tick %lluus\n\n",
              kPool, static_cast<unsigned long long>(kLongRows),
              kSpinPerTuple, kLongDegree, kMaxShorts,
              static_cast<unsigned long long>(kPaceBaseUs / 1000),
              static_cast<unsigned long long>(kRebalanceUs));

  const ModeResult stat = RunMode(/*adaptive=*/false);
  const ModeResult adap = RunMode(/*adaptive=*/true);

  std::printf("%10s %8s %12s %12s %12s %10s %8s %8s %7s\n", "mode",
              "shorts", "p50 us", "p95 us", "p99 us", "long s", "parked",
              "granted", "match");
  for (const auto* m : {&stat, &adap}) {
    std::printf("%10s %8zu %12.0f %12.0f %12.0f %10.2f %8llu %8llu %7s\n",
                m == &stat ? "static" : "adaptive", m->short_lat_us.size(),
                Percentile(m->short_lat_us, 0.50),
                Percentile(m->short_lat_us, 0.95),
                Percentile(m->short_lat_us, 0.99), m->long_wall_s,
                static_cast<unsigned long long>(m->long_parked),
                static_cast<unsigned long long>(m->long_granted),
                m->results_match ? "yes" : "NO");
  }
  const double ratio =
      stat.long_wall_s > 0 ? adap.long_wall_s / stat.long_wall_s : 0.0;
  std::printf("\nlong-wall ratio adaptive/static: %.3f (gate <= 1.05)\n",
              ratio);

  FILE* json = std::fopen("BENCH_adaptive.json", "w");
  CheckOk(json != nullptr
              ? Status::OK()
              : Status::Internal("cannot open BENCH_adaptive.json"),
          "open json");
  std::fprintf(json,
               "{\n"
               "  \"pool_threads\": %zu,\n"
               "  \"long_rows\": %llu,\n"
               "  \"long_degree\": %zu,\n"
               "  \"rebalance_interval_us\": %llu,\n"
               "  \"modes\": {\n",
               kPool, static_cast<unsigned long long>(kLongRows),
               kLongDegree, static_cast<unsigned long long>(kRebalanceUs));
  const ModeResult* modes[] = {&stat, &adap};
  const char* names[] = {"static", "adaptive"};
  for (int i = 0; i < 2; ++i) {
    const ModeResult& m = *modes[i];
    std::fprintf(json,
                 "    \"%s\": {\"shorts\": %zu,"
                 " \"short_p50_us\": %.1f,"
                 " \"short_p95_us\": %.1f,"
                 " \"short_p99_us\": %.1f,"
                 " \"long_wall_s\": %.4f,"
                 " \"threads_parked\": %llu,"
                 " \"threads_granted\": %llu,"
                 " \"results_match\": %s}%s\n",
                 names[i], m.short_lat_us.size(),
                 Percentile(m.short_lat_us, 0.50),
                 Percentile(m.short_lat_us, 0.95),
                 Percentile(m.short_lat_us, 0.99), m.long_wall_s,
                 static_cast<unsigned long long>(m.long_parked),
                 static_cast<unsigned long long>(m.long_granted),
                 m.results_match ? "true" : "false", i == 0 ? "," : "");
  }
  std::fprintf(json,
               "  },\n"
               "  \"long_wall_ratio\": %.4f\n"
               "}\n",
               ratio);
  std::fclose(json);
  std::printf("wrote BENCH_adaptive.json\n");
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Reproduces Figure 18: skew overhead of IdealJoin vs. degree of
// partitioning.
//
// Paper setup (Section 5.6.2): IdealJoin, 20 threads, LPT; nested loop on
// 100K/10K and temporary index on 500K/50K; Zipf 0.6 vs unskewed; degree
// 20..1500. v_0.6 = T_0.6 / T_0 - 1. Expected: the two curves nearly
// coincide (the behaviour under skew is independent of the join algorithm)
// and fall towards ~0 as the degree grows, under the analytical bound
// v_worst; at low degree the longest fragment dominates (v ~ 2.5).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "model/analysis.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

JoinWorkloadSpec MakeSpec(bool index, size_t degree, double theta) {
  JoinWorkloadSpec spec;
  if (index) {
    spec.a_cardinality = 500'000;
    spec.b_cardinality = 50'000;
    spec.algorithm = JoinAlgorithm::kTempIndex;
  } else {
    spec.a_cardinality = 100'000;
    spec.b_cardinality = 10'000;
    spec.algorithm = JoinAlgorithm::kNestedLoop;
  }
  spec.degree = degree;
  spec.theta = theta;
  spec.threads = 20;
  spec.strategy = Strategy::kLpt;
  return spec;
}

double RunOne(const JoinWorkloadSpec& spec, const SimCosts& costs) {
  SimPlanSpec plan = UnwrapOrDie(BuildIdealJoinSim(spec, costs), "build");
  SimMachine machine(KsrConfig(costs));
  return UnwrapOrDie(machine.Run(plan), "run").elapsed;
}

void Run() {
  PrintHeader("Figure 18", "Skew overhead v_0.6 of IdealJoin vs degree");
  std::printf("20 threads, LPT; nested loop on 100K/10K, temp index on "
              "500K/50K; Zipf 0.6\n");
  std::printf("paper: the two curves almost coincide and fall towards 0 as "
              "the degree grows\n\n");
  std::printf("%8s %14s %14s %12s\n", "degree", "v (nested)", "v (index)",
              "v_worst");

  SimCosts costs;
  for (size_t d : {20ul, 100ul, 250ul, 500ul, 750ul, 1000ul, 1250ul,
                   1500ul}) {
    const double v_nl =
        RunOne(MakeSpec(false, d, 0.6), costs) /
            RunOne(MakeSpec(false, d, 0.0), costs) -
        1.0;
    const double v_ix =
        RunOne(MakeSpec(true, d, 0.6), costs) /
            RunOne(MakeSpec(true, d, 0.0), costs) -
        1.0;
    OperationProfile p = UnwrapOrDie(
        JoinProfile(MakeSpec(false, d, 0.6), costs, /*pipelined=*/false),
        "profile");
    std::printf("%8zu %14.2f %14.2f %12.2f\n", d, v_nl, v_ix,
                OverheadBound(p, 20));
  }
  std::printf("\npaper also verified the pipelined AssocJoin stays at "
              "v_0.6 < 0.03 for any degree:\n");
  for (size_t d : {100ul, 500ul, 1500ul}) {
    JoinWorkloadSpec skew = MakeSpec(false, d, 0.6);
    JoinWorkloadSpec flat = MakeSpec(false, d, 0.0);
    SimMachine m1(KsrConfig(costs));
    SimMachine m2(KsrConfig(costs));
    const double t_skew =
        UnwrapOrDie(m1.Run(UnwrapOrDie(BuildAssocJoinSim(skew, costs),
                                       "build")),
                    "run")
            .elapsed;
    const double t_flat =
        UnwrapOrDie(m2.Run(UnwrapOrDie(BuildAssocJoinSim(flat, costs),
                                       "build")),
                    "run")
            .elapsed;
    std::printf("  AssocJoin d=%-5zu v_0.6 = %.3f\n", d,
                t_skew / t_flat - 1.0);
  }
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

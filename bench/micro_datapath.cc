// Allocation profile of the engine data path. Replaces global operator
// new/delete with counting hooks and measures (a) heap allocations per
// result tuple on a steady-state pipelined join — the chunk pool and the
// assign-in-place emitters are what keep this flat — and (b) the probe
// kernels: TempIndex::Probe (iterator range, zero allocations) against the
// materializing Lookup, and (c) the per-kernel steady-state allocation
// counts of the vectorized path (gather, filter, hash, batched probe),
// each of which must be zero. Emits BENCH_datapath.json; the CI gate
// (compare_bench.py --datapath) enforces the allocation budget.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "common/arena.h"
#include "dbs3/database.h"
#include "dbs3/query.h"
#include "engine/vector/column_batch.h"
#include "engine/vector/kernels.h"
#include "engine/vector/pred.h"
#include "storage/temp_index.h"

namespace {

/// Every path into the heap bumps this; readers snapshot around the
/// measured region. Relaxed: the bench is effectively single-threaded at
/// snapshot time and only deltas matter.
std::atomic<uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) std::abort();  // Bench: OOM is fatal, never thrown.
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size > 0 ? size : 1) != 0) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dbs3 {
namespace {

constexpr int kReps = 5;

struct PipelinePoint {
  double wall_seconds = 0.0;       // Best of kReps.
  uint64_t result_tuples = 0;
  uint64_t allocations = 0;        // Fewest of kReps (steady-state floor).
  double allocations_per_tuple = 0.0;
  uint64_t pool_allocated = 0;     // Chunk-pool stats of the best-alloc rep.
  uint64_t pool_reused = 0;
  double pool_reuse_fraction = 0.0;
};

/// Steady-state pipelined join through the shared runtime: the warm-up
/// runs fill the runtime's chunk pool and spawn its threads, then each
/// measured rep counts every heap allocation end to end (plan build,
/// scheduling, execution, result materialization).
PipelinePoint MeasurePipeline(Database& db) {
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  for (int warm = 0; warm < 2; ++warm) {
    UnwrapOrDie(RunAssocJoin(db, "B", "key", "A", "key", options),
                "AssocJoin warm-up");
  }

  PipelinePoint point;
  point.wall_seconds = 1e30;
  point.allocations = ~uint64_t{0};
  for (int rep = 0; rep < kReps; ++rep) {
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    QueryResult r = UnwrapOrDie(
        RunAssocJoin(db, "B", "key", "A", "key", options), "AssocJoin");
    const uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - before;
    point.wall_seconds = std::min(point.wall_seconds, r.execution.seconds);
    point.result_tuples = r.result->cardinality();
    if (allocs < point.allocations) {
      point.allocations = allocs;
      point.pool_allocated = r.execution.chunk_pool.allocated;
      point.pool_reused = r.execution.chunk_pool.reused;
    }
  }
  point.allocations_per_tuple =
      point.result_tuples > 0
          ? static_cast<double>(point.allocations) /
                static_cast<double>(point.result_tuples)
          : 0.0;
  const uint64_t acquired = point.pool_allocated + point.pool_reused;
  point.pool_reuse_fraction =
      acquired > 0 ? static_cast<double>(point.pool_reused) /
                         static_cast<double>(acquired)
                   : 0.0;
  return point;
}

struct ProbePoint {
  double probe_seconds = 0.0;   // Best of kReps, whole key sweep.
  double lookup_seconds = 0.0;
  uint64_t matches = 0;         // Per sweep; both kernels must agree.
  uint64_t probe_allocations = 0;
  uint64_t lookup_allocations = 0;
};

/// Sweeps every key of a duplicate-heavy fragment through both probe
/// kernels. The iterator-range Probe must not touch the heap at all; the
/// materializing Lookup pays one vector per hit key.
ProbePoint MeasureProbes(const Fragment& fragment) {
  TempIndex index(fragment, 0);
  constexpr int64_t kKeys = 4'096;
  ProbePoint point;
  point.probe_seconds = 1e30;
  point.lookup_seconds = 1e30;

  uint64_t probe_sum = 0, lookup_sum = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    uint64_t matches = 0, sum = 0;
    uint64_t before = g_allocations.load(std::memory_order_relaxed);
    auto start = std::chrono::steady_clock::now();
    for (int64_t key = 0; key < kKeys; ++key) {
      const Value probe_key(key);
      for (uint32_t i : index.Probe(probe_key)) {
        ++matches;
        sum += i;
      }
    }
    point.probe_seconds = std::min(
        point.probe_seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    point.probe_allocations =
        g_allocations.load(std::memory_order_relaxed) - before;
    point.matches = matches;
    probe_sum = sum;

    matches = 0;
    sum = 0;
    before = g_allocations.load(std::memory_order_relaxed);
    start = std::chrono::steady_clock::now();
    for (int64_t key = 0; key < kKeys; ++key) {
      for (uint32_t i : index.Lookup(Value(key))) {
        ++matches;
        sum += i;
      }
    }
    point.lookup_seconds = std::min(
        point.lookup_seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    point.lookup_allocations =
        g_allocations.load(std::memory_order_relaxed) - before;
    lookup_sum = sum;
    if (matches != point.matches || probe_sum != lookup_sum) {
      std::fprintf(stderr, "probe/lookup disagree: %llu vs %llu matches\n",
                   static_cast<unsigned long long>(point.matches),
                   static_cast<unsigned long long>(matches));
      std::exit(1);
    }
  }
  return point;
}

double MatchesPerSecond(uint64_t matches, double seconds) {
  return seconds > 0.0 ? static_cast<double>(matches) / seconds : 0.0;
}

/// Steady-state heap allocations of each vectorized kernel in isolation:
/// the column gather, the predicate kernel, the hash kernel, and the
/// batched probe, each swept over a chunked workload against the warmed
/// thread-local arena. Every count must be zero — the kernels' transient
/// state lives entirely in the arena.
struct KernelAllocs {
  uint64_t gather = 0;
  uint64_t filter = 0;
  uint64_t hash = 0;
  uint64_t probe = 0;
};

KernelAllocs MeasureKernelAllocations(const Fragment& fragment) {
  constexpr size_t kChunk = 256;
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 4'096; ++i) {
    rows.push_back(Tuple({Value(i % 4'096), Value(i)}));
  }
  std::vector<PredExpr> conjuncts;
  conjuncts.push_back(PredExpr::IntBetween(0, 16, 3'000));
  const PredExpr pred = PredExpr::And(std::move(conjuncts));
  const TempIndex index(fragment, 0);
  Arena& arena = ThreadLocalKernelArena();

  const auto sweep = [&](auto&& chunk_body) {
    for (size_t base = 0; base < rows.size(); base += kChunk) {
      const size_t n = std::min(kChunk, rows.size() - base);
      ScopedArena scope(&arena);
      ColumnBatch batch(std::span<const Tuple>(rows.data() + base, n),
                        scope.get());
      chunk_body(batch, *scope.get(), n);
    }
  };
  const auto measure = [&](auto&& chunk_body) {
    uint64_t best = ~uint64_t{0};
    for (int rep = 0; rep < kReps + 1; ++rep) {
      const uint64_t before = g_allocations.load(std::memory_order_relaxed);
      sweep(chunk_body);
      const uint64_t allocs =
          g_allocations.load(std::memory_order_relaxed) - before;
      if (rep > 0) best = std::min(best, allocs);  // Rep 0 warms the arena.
    }
    return best;
  };

  KernelAllocs out;
  out.gather = measure([&](ColumnBatch& batch, Arena&, size_t) {
    if (batch.Ints(0) == nullptr) std::abort();
  });
  out.filter = measure([&](ColumnBatch& batch, Arena& a, size_t n) {
    uint32_t* sel = a.AllocateArrayOf<uint32_t>(n);
    EvalPredAll(pred, batch, sel);
  });
  out.hash = measure([&](ColumnBatch& batch, Arena& a, size_t) {
    if (HashColumn(batch, 0, &a) == nullptr) std::abort();
  });
  out.probe = measure([&](ColumnBatch& batch, Arena& a, size_t n) {
    const int64_t* keys = batch.Ints(0);
    uint32_t* first = a.AllocateArrayOf<uint32_t>(n);
    index.ProbeKeys(std::span<const int64_t>(keys, n), first);
  });
  return out;
}

void WriteJson(const PipelinePoint& pipeline, const ProbePoint& probe,
               const KernelAllocs& kernels, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_datapath\",\n");
  std::fprintf(f,
               "  \"workload\": {\"plan\": \"assoc-join\", \"probe_tuples\": "
               "8000, \"result_tuples\": %llu, \"degree\": 32, \"threads\": "
               "4, \"reps\": %d},\n",
               static_cast<unsigned long long>(pipeline.result_tuples),
               kReps);
  std::fprintf(f,
               "  \"pipeline\": {\"wall_seconds\": %.6f, \"allocations\": "
               "%llu, \"allocations_per_tuple\": %.3f, \"pool_allocated\": "
               "%llu, \"pool_reused\": %llu, \"pool_reuse_fraction\": "
               "%.4f},\n",
               pipeline.wall_seconds,
               static_cast<unsigned long long>(pipeline.allocations),
               pipeline.allocations_per_tuple,
               static_cast<unsigned long long>(pipeline.pool_allocated),
               static_cast<unsigned long long>(pipeline.pool_reused),
               pipeline.pool_reuse_fraction);
  std::fprintf(f,
               "  \"probe\": {\"matches\": %llu, \"probe_seconds\": %.6f, "
               "\"lookup_seconds\": %.6f, \"probe_matches_per_second\": "
               "%.0f, \"lookup_matches_per_second\": %.0f, "
               "\"probe_allocations\": %llu, \"lookup_allocations\": "
               "%llu}\n",
               static_cast<unsigned long long>(probe.matches),
               probe.probe_seconds, probe.lookup_seconds,
               MatchesPerSecond(probe.matches, probe.probe_seconds),
               MatchesPerSecond(probe.matches, probe.lookup_seconds),
               static_cast<unsigned long long>(probe.probe_allocations),
               static_cast<unsigned long long>(probe.lookup_allocations));
  std::fprintf(f, ",\n");
  std::fprintf(f,
               "  \"kernels\": {\"gather_allocations\": %llu, "
               "\"filter_allocations\": %llu, \"hash_allocations\": %llu, "
               "\"batch_probe_allocations\": %llu}\n",
               static_cast<unsigned long long>(kernels.gather),
               static_cast<unsigned long long>(kernels.filter),
               static_cast<unsigned long long>(kernels.hash),
               static_cast<unsigned long long>(kernels.probe));
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main() {
  PrintHeader("micro_datapath",
              "allocations per tuple and probe kernel throughput");

  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 40'000;
  spec.b_cardinality = 8'000;
  spec.degree = 32;
  spec.theta = 0.5;
  CheckOk(db.CreateSkewedPair(spec, "A", "B"), "CreateSkewedPair");

  const PipelinePoint pipeline = MeasurePipeline(db);
  std::printf("pipeline: wall %.2f ms, %llu allocations for %llu result "
              "tuples (%.2f/tuple), pool reuse %.1f%%\n",
              pipeline.wall_seconds * 1e3,
              static_cast<unsigned long long>(pipeline.allocations),
              static_cast<unsigned long long>(pipeline.result_tuples),
              pipeline.allocations_per_tuple,
              pipeline.pool_reuse_fraction * 100.0);

  // 64K tuples, 16 matches per key: chains long enough that the per-probe
  // vector of the materializing path shows up.
  Fragment fragment;
  for (int64_t k = 0; k < 65'536; ++k) {
    fragment.tuples.push_back(Tuple({Value(k % 4'096), Value(k)}));
  }
  const ProbePoint probe = MeasureProbes(fragment);
  std::printf("probe:    %llu matches/sweep, Probe %.2f ms (%llu allocs), "
              "Lookup %.2f ms (%llu allocs)\n",
              static_cast<unsigned long long>(probe.matches),
              probe.probe_seconds * 1e3,
              static_cast<unsigned long long>(probe.probe_allocations),
              probe.lookup_seconds * 1e3,
              static_cast<unsigned long long>(probe.lookup_allocations));

  const KernelAllocs kernels = MeasureKernelAllocations(fragment);
  std::printf("kernels:  steady-state allocations per sweep — gather %llu, "
              "filter %llu, hash %llu, batch probe %llu\n",
              static_cast<unsigned long long>(kernels.gather),
              static_cast<unsigned long long>(kernels.filter),
              static_cast<unsigned long long>(kernels.hash),
              static_cast<unsigned long long>(kernels.probe));

  WriteJson(pipeline, probe, kernels, "BENCH_datapath.json");
  std::printf("\nwrote BENCH_datapath.json\n");

  // Hard invariants (budget thresholds live in compare_bench.py): the
  // iterator-range probe path and the vectorized kernels never touch the
  // heap.
  if (probe.probe_allocations != 0) {
    std::printf("FAIL: Probe() allocated on the probe path\n");
    return 1;
  }
  if (kernels.gather + kernels.filter + kernels.hash + kernels.probe != 0) {
    std::printf("FAIL: a vectorized kernel allocated in steady state\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbs3

int main() { return dbs3::Main(); }

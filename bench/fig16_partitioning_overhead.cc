// Reproduces Figure 16: overhead of a high degree of partitioning (no
// temporary index).
//
// Paper setup (Section 5.6.1): unskewed relations 100K/10K, 20 threads,
// degree of partitioning 20..1500. Overhead is measured time minus the
// theoretical time T_d = T_20 x (20 / d) (the nested-loop work halves as
// the degree doubles). Expected: overhead approximately linear in the
// degree, ~0.45 ms/degree for IdealJoin (one activation per fragment) and
// ~4 ms/degree for AssocJoin (two queue groups and 10K activations).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

double RunQuery(bool assoc, size_t degree, const SimCosts& costs) {
  JoinWorkloadSpec spec;
  spec.a_cardinality = 100'000;
  spec.b_cardinality = 10'000;
  spec.degree = degree;
  spec.theta = 0.0;
  spec.threads = 20;
  spec.algorithm = JoinAlgorithm::kNestedLoop;
  SimPlanSpec plan = UnwrapOrDie(
      assoc ? BuildAssocJoinSim(spec, costs) : BuildIdealJoinSim(spec, costs),
      "build");
  SimMachine machine(KsrConfig(costs));
  return UnwrapOrDie(machine.Run(plan), "run").elapsed;
}

void Run() {
  PrintHeader("Figure 16",
              "Partitioning overhead, IdealJoin and AssocJoin (no index)");
  std::printf("A=100K, B'=10K unskewed, 20 threads, nested loop\n");
  std::printf("paper: overhead ~0.45 ms/degree (IdealJoin), ~4 ms/degree "
              "(AssocJoin)\n\n");

  const std::vector<size_t> degrees = {20,  100, 250,  500,
                                       750, 1000, 1250, 1500};
  SimCosts costs;
  const double t20_ideal = RunQuery(false, 20, costs);
  const double t20_assoc = RunQuery(true, 20, costs);

  std::printf("%8s %16s %16s\n", "degree", "IdealJoin ovh(s)",
              "AssocJoin ovh(s)");
  std::vector<double> xs, ys_ideal, ys_assoc;
  for (size_t d : degrees) {
    const double theoretical_scale = 20.0 / static_cast<double>(d);
    const double ovh_ideal =
        RunQuery(false, d, costs) - t20_ideal * theoretical_scale;
    const double ovh_assoc =
        RunQuery(true, d, costs) - t20_assoc * theoretical_scale;
    std::printf("%8zu %16.3f %16.3f\n", d, ovh_ideal, ovh_assoc);
    xs.push_back(static_cast<double>(d));
    ys_ideal.push_back(ovh_ideal);
    ys_assoc.push_back(ovh_assoc);
  }
  const LinearFit fit_ideal = FitLine(xs, ys_ideal);
  const LinearFit fit_assoc = FitLine(xs, ys_assoc);
  std::printf("\nfitted slopes: IdealJoin %.2f ms/degree (paper ~0.45), "
              "AssocJoin %.2f ms/degree (paper ~4), r2 = %.3f / %.3f\n",
              fit_ideal.slope * 1e3, fit_assoc.slope * 1e3, fit_ideal.r2,
              fit_assoc.r2);
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Chunked-activation sweep on the real multithreaded engine: runs the
// pipelined-join workload (transmit -> join -> store, the AssocJoin shape of
// Figure 11) at chunk_size in {1, 4, 16, 64, 256} and reports wall-clock,
// queue-mutex contention, and tuples per activation. chunk_size = 1 is the
// paper-faithful per-tuple mode; larger chunks amortize the producer-side
// queue round-trip. Emits BENCH_chunking.json next to the aligned rows.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dbs3/database.h"
#include "dbs3/query.h"

namespace dbs3 {
namespace {

struct ChunkPoint {
  size_t chunk_size = 1;
  double wall_seconds = 0.0;       // Best of kReps (noise-robust).
  double busy_seconds = 0.0;       // Processing time summed over workers,
  double span_seconds = 0.0;       // vs. the slowest worker's wall span
                                   // (both from the best-wall rep).
  uint64_t queue_acquisitions = 0; // Summed over all reps and operations.
  uint64_t queue_contended = 0;
  double tuples_per_activation = 0.0;
};

constexpr int kReps = 5;

ChunkPoint MeasureChunk(Database& db, size_t chunk_size) {
  ChunkPoint point;
  point.chunk_size = chunk_size;
  point.wall_seconds = 1e30;
  uint64_t tuples = 0, activations = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    QueryOptions options;
    options.schedule.total_threads = 4;
    options.schedule.processors = 4;
    options.schedule.chunk_size = chunk_size;
    QueryResult r = UnwrapOrDie(
        RunAssocJoin(db, "B", "key", "A", "key", options), "AssocJoin");
    if (r.execution.seconds < point.wall_seconds) {
      point.busy_seconds = 0.0;
      point.span_seconds = 0.0;
      for (const OperationStats& op : r.execution.op_stats) {
        point.busy_seconds += op.busy_seconds;
        point.span_seconds = std::max(point.span_seconds,
                                      op.wall_span_seconds);
      }
    }
    point.wall_seconds = std::min(point.wall_seconds, r.execution.seconds);
    for (const OperationStats& op : r.execution.op_stats) {
      point.queue_acquisitions += op.queue_acquisitions;
      point.queue_contended += op.queue_contended;
      activations += op.activations;
      for (uint64_t c : op.per_instance_processed) tuples += c;
    }
  }
  point.tuples_per_activation =
      activations > 0
          ? static_cast<double>(tuples) / static_cast<double>(activations)
          : 0.0;
  return point;
}

double ContentionRatio(const ChunkPoint& p) {
  return p.queue_acquisitions > 0
             ? static_cast<double>(p.queue_contended) /
                   static_cast<double>(p.queue_acquisitions)
             : 0.0;
}

void WriteJson(const std::vector<ChunkPoint>& points, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_chunking\",\n");
  std::fprintf(f,
               "  \"workload\": {\"plan\": \"assoc-join\", \"probe_tuples\": "
               "8000, \"result_tuples\": 40000, \"degree\": 32, \"threads\": "
               "4, \"reps\": %d},\n",
               kReps);
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ChunkPoint& p = points[i];
    std::fprintf(f,
                 "    {\"chunk_size\": %zu, \"wall_seconds\": %.6f, "
                 "\"busy_seconds\": %.6f, \"wall_span_seconds\": %.6f, "
                 "\"queue_acquisitions\": %llu, \"queue_contended\": %llu, "
                 "\"contention_ratio\": %.6f, \"tuples_per_activation\": "
                 "%.2f}%s\n",
                 p.chunk_size, p.wall_seconds, p.busy_seconds,
                 p.span_seconds,
                 static_cast<unsigned long long>(p.queue_acquisitions),
                 static_cast<unsigned long long>(p.queue_contended),
                 ContentionRatio(p), p.tuples_per_activation,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main() {
  PrintHeader("micro_chunking",
              "chunked data activations on the pipelined join");

  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 40'000;
  spec.b_cardinality = 8'000;
  spec.degree = 32;
  spec.theta = 0.5;
  CheckOk(db.CreateSkewedPair(spec, "A", "B"), "CreateSkewedPair");

  std::vector<ChunkPoint> points;
  std::printf("%-12s %-10s %-10s %-10s %-14s %-12s %-12s %s\n",
              "chunk_size", "wall_ms", "busy_ms", "span_ms", "acquisitions",
              "contended", "cont_ratio", "tuples/activation");
  for (size_t chunk : {1ul, 4ul, 16ul, 64ul, 256ul}) {
    const ChunkPoint p = MeasureChunk(db, chunk);
    std::printf("%-12zu %-10.2f %-10.2f %-10.2f %-14llu %-12llu %-12.6f "
                "%.1f\n",
                p.chunk_size, p.wall_seconds * 1e3, p.busy_seconds * 1e3,
                p.span_seconds * 1e3,
                static_cast<unsigned long long>(p.queue_acquisitions),
                static_cast<unsigned long long>(p.queue_contended),
                ContentionRatio(p), p.tuples_per_activation);
    points.push_back(p);
  }

  WriteJson(points, "BENCH_chunking.json");
  std::printf("\nwrote BENCH_chunking.json\n");

  // Acceptance gate: at chunk_size >= 16 the queue traffic (acquisitions)
  // and wall-clock must be strictly below the per-tuple mode, and the
  // contention ratio must be no worse. On few-core machines the contended
  // counters are single digits out of tens of thousands of acquisitions
  // (often exactly zero), so ratios within a small noise floor of each
  // other are indistinguishable; only a genuine contention regression
  // fails. Acquisitions are deterministic and stay strict.
  constexpr double kContentionNoise = 1e-3;
  const ChunkPoint& base = points[0];
  const ChunkPoint& chunked = points[2];  // chunk_size 16
  const bool ok =
      chunked.queue_acquisitions < base.queue_acquisitions &&
      ContentionRatio(chunked) <= ContentionRatio(base) + kContentionNoise &&
      chunked.wall_seconds < base.wall_seconds;
  std::printf("chunk=16 vs chunk=1: wall %.2f ms -> %.2f ms, acquisitions "
              "%llu -> %llu, contention %.6f -> %.6f  [%s]\n",
              base.wall_seconds * 1e3, chunked.wall_seconds * 1e3,
              static_cast<unsigned long long>(base.queue_acquisitions),
              static_cast<unsigned long long>(chunked.queue_acquisitions),
              ContentionRatio(base), ContentionRatio(chunked),
              ok ? "IMPROVED" : "NO IMPROVEMENT");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dbs3

int main() { return dbs3::Main(); }

// Extension: the memory-budgeted operators under pressure — a sweep of
// build cardinality × declared budget × build-side key skew over a
// join + aggregate ESQL workload.
//
// Each dataset point first runs the workload unbudgeted (the in-memory
// reference rows and baseline wall time), then re-runs it under each
// budget through Database::Submit. Per budgeted run the benchmark
// records whether the rows are byte-identical to the reference, the
// query's quota high-water mark (the enforcement evidence: it must stay
// within the declared budget plus the bounded forced-progress slack),
// the spill bytes the run wrote, and the wall-time overhead of spilling.
// The hot-key datasets concentrate one build partition so the join
// exercises recursive repartitioning and the nested-loop fallback, not
// just the clean partition-wise path.
//
// Writes BENCH_spill.json next to the binary; the CI gate
// (compare_bench.py --spill) requires every budgeted point to match the
// reference, every high water to respect its budget, and at least one
// point to have actually spilled.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "dbs3/database.h"
#include "esql/planner.h"
#include "storage/relation.h"

namespace dbs3 {
namespace {

constexpr int kReps = 3;  // Best-of to damp noise.
// Declared budgets in tuple units. The small one is far below every
// build side (always spills); the large one only pressures the bigger
// datasets.
constexpr uint64_t kBudgets[] = {96, 1024};
// Distinct aggregation groups — enough that tight budgets also flush
// group-by state, not just join partitions.
constexpr int64_t kGroups = 400;

struct DataSpec {
  const char* skew;     ///< "uniform" or "hot" (80% of B on one key).
  size_t a_rows;        ///< Probe side.
  size_t b_rows;        ///< Build side (what the budget squeezes).
  int hot_percent;      ///< Share of B rows on the hot key.
  uint64_t seed;
};

constexpr DataSpec kDatasets[] = {
    {"uniform", 6'000, 1'500, 0, 17},
    {"hot", 6'000, 1'500, 80, 18},
    {"uniform", 24'000, 6'000, 0, 19},
    {"hot", 24'000, 6'000, 80, 20},
};

const char* kQuery =
    "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) "
    "FROM A JOIN B ON A.k = B.k GROUP BY g";

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// A(k, v) uniform probe side; B(k, g) build side, optionally with
/// `hot_percent` of its rows on key 7 (tuple placement skew on the build
/// relation, so the join's partitions — not just the probe stream — are
/// skewed).
std::unique_ptr<Database> BuildDatabase(const DataSpec& spec) {
  auto db = std::make_unique<Database>(2);
  Rng rng(spec.seed);
  auto a = std::make_unique<Relation>(
      "A", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}), 0,
      Partitioner(PartitionKind::kModulo, 4));
  for (size_t i = 0; i < spec.a_rows; ++i) {
    CheckOk(a->Insert(Tuple(
                {Value(rng.Range(0, static_cast<int64_t>(spec.b_rows) - 1)),
                 Value(rng.Range(-50, 50))})),
            "insert A");
  }
  auto b = std::make_unique<Relation>(
      "B", Schema({{"k", ValueType::kInt64}, {"g", ValueType::kInt64}}), 0,
      Partitioner(PartitionKind::kModulo, 4));
  for (size_t i = 0; i < spec.b_rows; ++i) {
    const int64_t key =
        rng.Range(0, 99) < spec.hot_percent
            ? int64_t{7}
            : rng.Range(0, static_cast<int64_t>(spec.b_rows) - 1);
    CheckOk(b->Insert(Tuple({Value(key), Value(rng.Range(0, kGroups - 1))})),
            "insert B");
  }
  CheckOk(db->AddRelation(std::move(a)), "add A");
  CheckOk(db->AddRelation(std::move(b)), "add B");
  return db;
}

struct RunOutcome {
  std::vector<Tuple> rows;       ///< Sorted result rows.
  double wall_s = 0.0;           ///< Best-of-kReps.
  uint64_t high_water_units = 0;
  uint64_t spill_bytes = 0;      ///< Delta across the best rep's run.
};

/// Runs the workload at `budget` (0 = unbudgeted) best-of-kReps through
/// the concurrent runtime, so quota high water comes from the query's
/// own stats.
RunOutcome RunWorkload(Database& db, uint64_t budget) {
  EsqlOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  options.memory_units = budget;
  RunOutcome out;
  for (int rep = 0; rep < kReps; ++rep) {
    const uint64_t spilled_before =
        db.metrics().Snapshot().counters["spill.bytes_written"];
    const auto start = std::chrono::steady_clock::now();
    QueryHandle handle = SubmitEsql(db, kQuery, options);
    Result<QueryResult> taken = handle.Take();
    const double wall = Seconds(std::chrono::steady_clock::now() - start);
    CheckOk(taken.status(), "SubmitEsql");
    const uint64_t spilled =
        db.metrics().Snapshot().counters["spill.bytes_written"] -
        spilled_before;
    if (rep == 0 || wall < out.wall_s) {
      out.wall_s = wall;
      out.rows = taken.value().result->Scan();
      std::sort(out.rows.begin(), out.rows.end());
      out.high_water_units = handle.stats().quota_high_water_units;
      out.spill_bytes = spilled;
    }
  }
  return out;
}

struct Point {
  DataSpec spec;
  uint64_t budget = 0;
  bool match = false;
  uint64_t high_water_units = 0;
  uint64_t spill_bytes = 0;
  double wall_s = 0.0;
  double unbudgeted_wall_s = 0.0;
  double overhead() const {
    return unbudgeted_wall_s > 0 ? wall_s / unbudgeted_wall_s : 0.0;
  }
};

void Run() {
  PrintHeader("Extension: spilling memory-budgeted operators",
              "join+aggregate sweep: cardinality x budget x build skew, "
              "budgeted vs unbudgeted (identical rows required)");

  std::vector<Point> points;
  for (const DataSpec& spec : kDatasets) {
    std::unique_ptr<Database> db = BuildDatabase(spec);
    const RunOutcome reference = RunWorkload(*db, 0);
    for (uint64_t budget : kBudgets) {
      const RunOutcome budgeted = RunWorkload(*db, budget);
      Point p;
      p.spec = spec;
      p.budget = budget;
      p.match = budgeted.rows == reference.rows;
      p.high_water_units = budgeted.high_water_units;
      p.spill_bytes = budgeted.spill_bytes;
      p.wall_s = budgeted.wall_s;
      p.unbudgeted_wall_s = reference.wall_s;
      points.push_back(p);
    }
  }

  std::printf("%8s %8s %8s %8s %7s %11s %12s %10s %9s\n", "a_rows",
              "b_rows", "skew", "budget", "match", "high_water",
              "spill_bytes", "wall(s)", "overhead");
  bool all_match = true;
  bool any_spilled = false;
  int64_t max_overshoot = 0;
  for (const Point& p : points) {
    std::printf("%8zu %8zu %8s %8llu %7s %11llu %12llu %10.4f %8.2fx\n",
                p.spec.a_rows, p.spec.b_rows, p.spec.skew,
                static_cast<unsigned long long>(p.budget),
                p.match ? "yes" : "NO",
                static_cast<unsigned long long>(p.high_water_units),
                static_cast<unsigned long long>(p.spill_bytes), p.wall_s,
                p.overhead());
    all_match = all_match && p.match;
    any_spilled = any_spilled || p.spill_bytes > 0;
    max_overshoot =
        std::max(max_overshoot, static_cast<int64_t>(p.high_water_units) -
                                    static_cast<int64_t>(p.budget));
  }
  std::printf("\nall rows match: %s; any point spilled: %s; max high-water "
              "overshoot: %lld units\n",
              all_match ? "yes" : "NO", any_spilled ? "yes" : "NO",
              static_cast<long long>(max_overshoot));

  FILE* json = std::fopen("BENCH_spill.json", "w");
  CheckOk(json != nullptr ? Status::OK()
                          : Status::Internal("cannot open BENCH_spill.json"),
          "open json");
  std::fprintf(json,
               "{\n"
               "  \"workload\": \"%s\",\n"
               "  \"reps\": %d,\n"
               "  \"points\": [\n",
               kQuery, kReps);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(json,
                 "    {\"a_rows\": %zu, \"b_rows\": %zu, \"skew\": \"%s\","
                 " \"budget\": %llu, \"match\": %s,"
                 " \"high_water_units\": %llu, \"spill_bytes\": %llu,"
                 " \"wall_s\": %.6f, \"unbudgeted_wall_s\": %.6f,"
                 " \"overhead\": %.4f}%s\n",
                 p.spec.a_rows, p.spec.b_rows, p.spec.skew,
                 static_cast<unsigned long long>(p.budget),
                 p.match ? "true" : "false",
                 static_cast<unsigned long long>(p.high_water_units),
                 static_cast<unsigned long long>(p.spill_bytes), p.wall_s,
                 p.unbudgeted_wall_s, p.overhead(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"all_match\": %s,\n"
               "  \"any_spilled\": %s,\n"
               "  \"max_overshoot_units\": %lld\n"
               "}\n",
               all_match ? "true" : "false", any_spilled ? "true" : "false",
               static_cast<long long>(max_overshoot));
  std::fclose(json);
  std::printf("\nwrote BENCH_spill.json (CI gate: all match, bounded high "
              "water, at least one spill)\n");
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Extension: multi-user execution on the simulated KSR1 — the trade-off
// behind scheduler step 1's utilization factor [Rahm93]: reducing each
// query's thread allocation under concurrent load trades a little response
// time for throughput (less processor oversubscription, less start-up).
//
// Eight identical AssocJoins run concurrently on 70 processors; the
// per-query thread count is swept. Reported: mean query response time and
// system throughput (queries per 100 virtual seconds).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

/// Merges `copies` instances of `plan` into one simulated machine run
/// (remapping the output indices).
SimPlanSpec Replicate(const SimPlanSpec& plan, size_t copies) {
  SimPlanSpec out;
  for (size_t c = 0; c < copies; ++c) {
    const int base = static_cast<int>(out.ops.size());
    for (SimOpSpec op : plan.ops) {
      if (op.output >= 0) op.output += base;
      op.name += "#" + std::to_string(c);
      out.ops.push_back(std::move(op));
    }
  }
  return out;
}

void Run() {
  PrintHeader("Extension: multi-user throughput",
              "8 concurrent AssocJoins on 70 processors, per-query threads "
              "swept");
  std::printf("paper (Section 3, step 1): reduce per-query threads by the "
              "utilization factor to\nraise multi-user throughput "
              "[Rahm93]\n\n");

  SimCosts costs;
  JoinWorkloadSpec spec;
  spec.a_cardinality = 50'000;
  spec.b_cardinality = 5'000;
  spec.degree = 100;
  spec.theta = 0.3;

  constexpr size_t kClients = 8;
  std::printf("%16s %18s %18s %14s\n", "threads/query", "total threads",
              "mean response(s)", "makespan(s)");
  for (size_t per_query : {70ul, 35ul, 18ul, 9ul, 4ul}) {
    spec.threads = per_query;
    SimPlanSpec one = UnwrapOrDie(BuildAssocJoinSim(spec, costs), "build");
    SimPlanSpec merged = Replicate(one, kClients);
    SimMachineConfig config = KsrConfig(costs);
    // Oversubscription interference (context switches, cache pollution):
    // pure processor sharing would make oversubscription free apart from
    // start-up, which real machines are not.
    config.context_switch_overhead = 0.15;
    SimMachine machine(config);
    SimResult result = UnwrapOrDie(machine.Run(merged), "run");
    // Response time of client c = completion of its final op.
    double sum_response = 0.0;
    for (size_t c = 0; c < kClients; ++c) {
      double done = 0.0;
      for (size_t i = 0; i < one.ops.size(); ++i) {
        done = std::max(done,
                        result.ops[c * one.ops.size() + i].complete_time);
      }
      sum_response += done;
    }
    std::printf("%16zu %18zu %18.1f %14.1f\n", per_query,
                per_query * kClients, sum_response / kClients,
                result.elapsed);
  }
  std::printf("\nshape: sizing each query as if alone (70 threads x 8 "
              "clients = 560 threads on 70\nprocessors) maximizes neither "
              "metric; moderate per-query allocations finish the\nbatch "
              "sooner — the utilization reduction of scheduler step 1.\n");
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Kernel-level throughput of the vectorized batch path against the row
// path it replaces, on identical workloads: (a) the filter kernel — a
// conjunctive predicate through the std::function row path, the PredExpr
// row path, and the columnar EvalPredAll kernel across chunk sizes; (b)
// the probe kernel — per-key Value::Hash + TempIndex::ProbeHashed
// first-match resolution against the batched, pipelined ProbeKeys sweep
// over the gathered key column. Global operator
// new/delete are replaced with counting hooks so every point also reports
// its steady-state allocation count (the vectorized path must stay at
// zero). Emits BENCH_kernels.json; compare_bench.py --kernels enforces the
// >= 2x speedup and zero-allocation gates.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "common/arena.h"
#include "common/rng.h"
#include "engine/vector/column_batch.h"
#include "engine/vector/kernels.h"
#include "engine/vector/pred.h"
#include "storage/temp_index.h"

namespace {

std::atomic<uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) std::abort();  // Bench: OOM is fatal, never thrown.
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size > 0 ? size : 1) != 0) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dbs3 {
namespace {

constexpr int kReps = 21;
// Filter: a cache-resident row set swept many times per rep, so the sweep
// measures kernel cost, not DRAM streaming (where any path is bandwidth
// bound and the comparison says nothing about the kernels).
constexpr size_t kFilterRows = 1 << 14;   // 16K tuples, 3 int columns.
constexpr size_t kFilterPasses = 64;      // 1M tuple-visits per rep.
constexpr size_t kProbeRows = 1 << 18;    // 256K probe keys.
constexpr size_t kInnerRows = 1 << 18;    // 256K inner tuples, unique keys.
constexpr size_t kChunkSizes[] = {1, 4, 16, 64, 256, 1024};

struct Measurement {
  double seconds = 0.0;        // Best of kReps.
  uint64_t allocations = 0;    // Fewest of kReps (steady-state floor).
  uint64_t checksum = 0;       // All paths over one workload must agree.
};

/// Runs `body` kReps times; keeps the best wall time and the lowest
/// allocation delta. `body` returns a checksum that must be identical
/// across reps and across the paths being compared.
template <typename Body>
Measurement Measure(const Body& body) {
  Measurement m;
  m.seconds = 1e30;
  m.allocations = ~uint64_t{0};
  for (int rep = 0; rep < kReps; ++rep) {
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    const uint64_t checksum = body();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - before;
    m.seconds = std::min(m.seconds, seconds);
    m.allocations = std::min(m.allocations, allocs);
    if (rep > 0 && checksum != m.checksum) {
      std::fprintf(stderr, "checksum drifted across reps\n");
      std::exit(1);
    }
    m.checksum = checksum;
  }
  return m;
}

double TuplesPerSecond(size_t n, double seconds) {
  return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
}

struct SweepPoint {
  size_t chunk_size = 0;
  double tuples_per_second = 0.0;
  double speedup = 0.0;  // vs the row-path baseline of the same sweep.
  uint64_t allocations = 0;
};

// ---------------------------------------------------------------- Filter --

std::vector<Tuple> FilterWorkload() {
  Rng rng(17);
  std::vector<Tuple> rows;
  rows.reserve(kFilterRows);
  for (size_t i = 0; i < kFilterRows; ++i) {
    rows.push_back(Tuple({Value(rng.Range(0, 1000)), Value(rng.Range(0, 100)),
                          Value(static_cast<int64_t>(i))}));
  }
  return rows;
}

/// The conjunctive row predicate exactly as esql/planner.cc builds it on
/// the non-vectorized path (PredicateFor + CombinePredicates): one
/// type-erased std::function per comparison doing Value-level compares
/// (kGe is `literal < v || v == literal`, two variant dispatches), closed
/// over by an outer combinator that loops the conjuncts. This — not a
/// hand-inlined lambda — is what FilterLogic invoked per tuple before the
/// vector layer existed.
std::function<bool(const Tuple&)> PlannerPredicate() {
  std::vector<std::function<bool(const Tuple&)>> conjuncts;
  conjuncts.push_back([lit = Value(int64_t{100})](const Tuple& t) {
    const Value& v = t.at(0);
    return lit < v || v == lit;  // a >= 100
  });
  conjuncts.push_back([lit = Value(int64_t{700})](const Tuple& t) {
    const Value& v = t.at(0);
    return v < lit || v == lit;  // a <= 700
  });
  conjuncts.push_back([lit = Value(int64_t{7})](const Tuple& t) {
    return t.at(1) != lit;  // b != 7
  });
  return [conjuncts = std::move(conjuncts)](const Tuple& t) {
    for (const auto& p : conjuncts) {
      if (!p(t)) return false;
    }
    return true;
  };
}

/// The row path as the engine ran it before the vector layer: every tuple
/// enters the operator through a virtual per-tuple hook (the default
/// OnDataBatch loops over OnData) which invokes the type-erased
/// TuplePredicate — one virtual and one std::function indirection per
/// tuple. The real path pays emitter dispatch and queue accounting on top,
/// so this baseline flatters the row path if anything.
class RowFilter {
 public:
  explicit RowFilter(std::function<bool(const Tuple&)> fn)
      : fn_(std::move(fn)) {}
  virtual ~RowFilter() = default;
  virtual void OnRow(size_t i, const Tuple& t) {
    if (fn_(t)) sum_ += i;
  }
  uint64_t Take() {
    const uint64_t s = sum_;
    sum_ = 0;
    return s;
  }

 private:
  std::function<bool(const Tuple&)> fn_;
  uint64_t sum_ = 0;
};

__attribute__((noinline)) std::unique_ptr<RowFilter> MakeRowFilter(
    std::function<bool(const Tuple&)> fn) {
  return std::make_unique<RowFilter>(std::move(fn));
}

/// The batch filter kernel over `chunk_size`-tuple spans: one ColumnBatch
/// gather + branch-free EvalPredAll per chunk, transient state in the
/// warmed thread-local arena.
uint64_t BatchFilterSweep(const std::vector<Tuple>& rows, const PredExpr& pred,
                          size_t chunk_size) {
  Arena& arena = ThreadLocalKernelArena();
  uint64_t sum = 0;
  for (size_t base = 0; base < rows.size(); base += chunk_size) {
    const size_t n = std::min(chunk_size, rows.size() - base);
    ScopedArena scope(&arena);
    ColumnBatch batch(std::span<const Tuple>(rows.data() + base, n),
                      scope.get());
    uint32_t* sel = scope.get()->AllocateArrayOf<uint32_t>(n);
    const size_t matches = EvalPredAll(pred, batch, sel);
    for (size_t i = 0; i < matches; ++i) sum += base + sel[i];
  }
  return sum;
}

// ----------------------------------------------------------------- Probe --

/// Inner fragment with unique int keys, sized like a partition's temp
/// index: the engine builds one TempIndex per inner *fragment* (the
/// paper's relations hash-partitioned across the declustered nodes), so
/// the index a probe stream actually hits is a few-MB structure, not a
/// monolithic table — and the comparison measures the per-probe software
/// overhead the batch kernel removes rather than DRAM latency, which is
/// the same dependent-load chain on either path.
Fragment ProbeInner() {
  Fragment fragment;
  fragment.tuples.reserve(kInnerRows);
  for (size_t i = 0; i < kInnerRows; ++i) {
    fragment.tuples.push_back(Tuple({Value(static_cast<int64_t>(i))}));
  }
  return fragment;
}

std::vector<Tuple> ProbeWorkload() {
  Rng rng(23);
  std::vector<Tuple> probes;
  probes.reserve(kProbeRows);
  // Random keys over the inner key range: every probe matches, like the
  // paper's equi-joins (B.b = A.a with A keyed on a) where the probe side
  // references the build side's key domain.
  for (size_t i = 0; i < kProbeRows; ++i) {
    probes.push_back(
        Tuple({Value(rng.Range(0, static_cast<int64_t>(kInnerRows) - 1))}));
  }
  return probes;
}

/// The probe row path exactly as the engine ran it before this
/// optimization, and the gate baseline (the filter sweep gates against the
/// planner's pre-existing std::function path the same way): a replica of
/// the previous TempIndex — power-of-two buckets at load factor <= 1, no
/// inline key cache, each chain step comparing the cached hash and then
/// confirming by Value equality through the fragment tuple's heap-held
/// value vector — probed one tuple at a time through a virtual per-tuple
/// hook (the default OnDataBatch loops over OnData), hashing the key
/// through the Value variant. First-match resolution is the probe kernel's
/// whole contract — existence for the semi join, the chain start for the
/// join, whose subsequent match walk is identical iterator code on either
/// path and so is excluded from all sides here. The real path pays emitter
/// dispatch per match on top.
class SeedIndex {
 public:
  SeedIndex(const Fragment& fragment, size_t key_column)
      : fragment_(fragment), key_column_(key_column) {
    const size_t n = fragment.tuples.size();
    size_t buckets = 1;
    while (buckets < n) buckets <<= 1;
    head_.assign(buckets, TempIndex::kNone);
    mask_ = buckets - 1;
    next_.assign(n, TempIndex::kNone);
    hashes_.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      hashes_[i] = fragment.tuples[i].at(key_column_).Hash();
    }
    for (uint32_t i = static_cast<uint32_t>(n); i-- > 0;) {
      const size_t b = hashes_[i] & mask_;
      next_[i] = head_[b];
      head_[b] = i;
    }
  }

  uint32_t FirstMatch(uint64_t hash, const Value& key) const {
    uint32_t pos = head_[hash & mask_];
    while (pos != TempIndex::kNone) {
      if (hashes_[pos] == hash &&
          fragment_.tuples[pos].at(key_column_) == key) {
        return pos;
      }
      pos = next_[pos];
    }
    return pos;
  }

 private:
  const Fragment& fragment_;
  size_t key_column_;
  std::vector<uint32_t> head_;
  std::vector<uint32_t> next_;
  std::vector<uint64_t> hashes_;
  uint64_t mask_ = 0;
};

class RowProber {
 public:
  explicit RowProber(const SeedIndex* index) : index_(index) {}
  virtual ~RowProber() = default;
  virtual void OnRow(const Tuple& t) {
    const Value& key = t.at(0);
    const uint32_t pos = index_->FirstMatch(key.Hash(), key);
    if (pos != TempIndex::kNone) sum_ += pos + 1;
  }
  uint64_t Take() {
    const uint64_t s = sum_;
    sum_ = 0;
    return s;
  }

 private:
  const SeedIndex* index_;
  uint64_t sum_ = 0;
};

__attribute__((noinline)) std::unique_ptr<RowProber> MakeRowProber(
    const SeedIndex* index) {
  return std::make_unique<RowProber>(index);
}

/// The current scalar path — the same rebuilt TempIndex the batch kernel
/// probes (inline int-key cache, load factor <= 0.5), one tuple at a time.
/// Reported alongside the seed baseline so the speedup decomposes into the
/// index-layout share and the batching/pipelining share; the gate compares
/// against the seed path, i.e. what this change replaced end to end.
class CurrentRowProber {
 public:
  explicit CurrentRowProber(const TempIndex* index) : index_(index) {}
  virtual ~CurrentRowProber() = default;
  virtual void OnRow(const Tuple& t) {
    const Value& key = t.at(0);
    const TempIndex::MatchRange r = index_->ProbeHashed(key.Hash(), key);
    if (!r.empty()) sum_ += *r.begin() + 1;
  }
  uint64_t Take() {
    const uint64_t s = sum_;
    sum_ = 0;
    return s;
  }

 private:
  const TempIndex* index_;
  uint64_t sum_ = 0;
};

__attribute__((noinline)) std::unique_ptr<CurrentRowProber>
MakeCurrentRowProber(const TempIndex* index) {
  return std::make_unique<CurrentRowProber>(index);
}

/// Batch path as the semi join runs it: gather the key column once (it
/// doubles as hash input and confirm keys), resolve every chunk's first
/// matches with the pipelined tiled wave probe against the index's inline
/// key cache.
uint64_t BatchProbeSweep(const TempIndex& index,
                         const std::vector<Tuple>& probes, size_t chunk_size) {
  Arena& arena = ThreadLocalKernelArena();
  uint64_t sum = 0;
  for (size_t base = 0; base < probes.size(); base += chunk_size) {
    const size_t n = std::min(chunk_size, probes.size() - base);
    ScopedArena scope(&arena);
    ColumnBatch batch(std::span<const Tuple>(probes.data() + base, n),
                      scope.get());
    const int64_t* keys = batch.Ints(0);
    uint32_t* first = scope.get()->AllocateArrayOf<uint32_t>(n);
    index.ProbeKeys(std::span<const int64_t>(keys, n), first);
    for (size_t i = 0; i < n; ++i) {
      if (first[i] != TempIndex::kNone) sum += first[i] + 1;
    }
  }
  return sum;
}

// ------------------------------------------------------------------ JSON --

void WritePoints(std::FILE* f, const std::vector<SweepPoint>& points) {
  std::fprintf(f, "[");
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "%s\n    {\"chunk_size\": %zu, \"tuples_per_second\": %.0f, "
                 "\"speedup\": %.3f, \"steady_allocations\": %llu}",
                 i > 0 ? "," : "", points[i].chunk_size,
                 points[i].tuples_per_second, points[i].speedup,
                 static_cast<unsigned long long>(points[i].allocations));
  }
  std::fprintf(f, "\n  ]");
}

void WriteJson(double filter_row_tps, double filter_evalrow_tps,
               const std::vector<SweepPoint>& filter_points,
               double probe_row_tps, double probe_current_row_tps,
               const std::vector<SweepPoint>& probe_points, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n");
  std::fprintf(f,
               "  \"workload\": {\"filter_rows\": %zu, \"probe_rows\": %zu, "
               "\"inner_rows\": %zu, \"reps\": %d},\n",
               kFilterRows, kProbeRows, kInnerRows, kReps);
  std::fprintf(f,
               "  \"filter\": {\"row_tuples_per_second\": %.0f, "
               "\"evalrow_tuples_per_second\": %.0f, \"points\": ",
               filter_row_tps, filter_evalrow_tps);
  WritePoints(f, filter_points);
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "  \"probe\": {\"row_tuples_per_second\": %.0f, "
               "\"current_row_tuples_per_second\": %.0f, \"points\": ",
               probe_row_tps, probe_current_row_tps);
  WritePoints(f, probe_points);
  std::fprintf(f, "}\n}\n");
  std::fclose(f);
}

int Main() {
  PrintHeader("micro_kernels",
              "vectorized kernel throughput vs the row path");

  // --- Filter sweep. The row baseline is what FilterLogic did before the
  // vector layer existed: one std::function call per tuple.
  const std::vector<Tuple> rows = FilterWorkload();
  std::vector<PredExpr> conjuncts;
  conjuncts.push_back(PredExpr::IntBetween(0, 100, 700));
  conjuncts.push_back(PredExpr::IntNotEquals(1, 7));
  const PredExpr pred = PredExpr::And(std::move(conjuncts));

  const size_t filter_visits = rows.size() * kFilterPasses;
  std::unique_ptr<RowFilter> row_filter_op = MakeRowFilter(PlannerPredicate());
  const Measurement row_filter = Measure([&] {
    uint64_t sum = 0;
    for (size_t pass = 0; pass < kFilterPasses; ++pass) {
      for (size_t i = 0; i < rows.size(); ++i) {
        row_filter_op->OnRow(i, rows[i]);
      }
      sum += row_filter_op->Take();
    }
    return sum;
  });
  const Measurement evalrow_filter = Measure([&] {
    uint64_t sum = 0;
    for (size_t pass = 0; pass < kFilterPasses; ++pass) {
      for (size_t i = 0; i < rows.size(); ++i) {
        if (pred.EvalRow(rows[i])) sum += i;
      }
    }
    return sum;
  });
  if (evalrow_filter.checksum != row_filter.checksum) {
    std::fprintf(stderr, "row paths disagree\n");
    return 1;
  }
  const double filter_row_tps =
      TuplesPerSecond(filter_visits, row_filter.seconds);
  const double filter_evalrow_tps =
      TuplesPerSecond(filter_visits, evalrow_filter.seconds);
  std::printf("filter row path:      %11.0f tuples/s (per-tuple dispatch), "
              "%11.0f tuples/s (EvalRow)\n",
              filter_row_tps, filter_evalrow_tps);

  BatchFilterSweep(rows, pred, 256);  // Warm the thread-local arena.
  std::vector<SweepPoint> filter_points;
  for (size_t chunk_size : kChunkSizes) {
    const Measurement m = Measure([&] {
      uint64_t sum = 0;
      for (size_t pass = 0; pass < kFilterPasses; ++pass) {
        sum += BatchFilterSweep(rows, pred, chunk_size);
      }
      return sum;
    });
    if (m.checksum != row_filter.checksum) {
      std::fprintf(stderr, "batch filter disagrees at chunk %zu\n", chunk_size);
      return 1;
    }
    SweepPoint point;
    point.chunk_size = chunk_size;
    point.tuples_per_second = TuplesPerSecond(filter_visits, m.seconds);
    point.speedup = point.tuples_per_second / filter_row_tps;
    point.allocations = m.allocations;
    filter_points.push_back(point);
    std::printf("filter batch %4zu:    %11.0f tuples/s (%.2fx, %llu allocs)\n",
                chunk_size, point.tuples_per_second, point.speedup,
                static_cast<unsigned long long>(point.allocations));
  }

  // --- Probe sweep.
  const Fragment inner = ProbeInner();
  const TempIndex index(inner, 0);
  const SeedIndex seed_index(inner, 0);
  const std::vector<Tuple> probes = ProbeWorkload();

  std::unique_ptr<RowProber> row_prober = MakeRowProber(&seed_index);
  const Measurement row_probe = Measure([&] {
    for (const Tuple& t : probes) row_prober->OnRow(t);
    return row_prober->Take();
  });
  std::unique_ptr<CurrentRowProber> current_prober =
      MakeCurrentRowProber(&index);
  const Measurement current_row_probe = Measure([&] {
    for (const Tuple& t : probes) current_prober->OnRow(t);
    return current_prober->Take();
  });
  if (current_row_probe.checksum != row_probe.checksum) {
    std::fprintf(stderr, "row probe paths disagree\n");
    return 1;
  }
  const double probe_row_tps =
      TuplesPerSecond(probes.size(), row_probe.seconds);
  const double probe_current_row_tps =
      TuplesPerSecond(probes.size(), current_row_probe.seconds);
  std::printf("probe row path:       %11.0f probes/s (seed index), "
              "%11.0f probes/s (rebuilt index)\n",
              probe_row_tps, probe_current_row_tps);

  BatchProbeSweep(index, probes, 256);  // Warm the arena for this shape.
  std::vector<SweepPoint> probe_points;
  for (size_t chunk_size : kChunkSizes) {
    const Measurement m =
        Measure([&] { return BatchProbeSweep(index, probes, chunk_size); });
    if (m.checksum != row_probe.checksum) {
      std::fprintf(stderr, "batch probe disagrees at chunk %zu\n", chunk_size);
      return 1;
    }
    SweepPoint point;
    point.chunk_size = chunk_size;
    point.tuples_per_second = TuplesPerSecond(probes.size(), m.seconds);
    point.speedup = point.tuples_per_second / probe_row_tps;
    point.allocations = m.allocations;
    probe_points.push_back(point);
    std::printf("probe batch %4zu:     %11.0f probes/s (%.2fx, %llu allocs)\n",
                chunk_size, point.tuples_per_second, point.speedup,
                static_cast<unsigned long long>(point.allocations));
  }

  WriteJson(filter_row_tps, filter_evalrow_tps, filter_points, probe_row_tps,
            probe_current_row_tps, probe_points, "BENCH_kernels.json");
  std::printf("\nwrote BENCH_kernels.json\n");
  return 0;
}

}  // namespace
}  // namespace dbs3

int main() { return dbs3::Main(); }

#ifndef DBS3_BENCH_BENCH_UTIL_H_
#define DBS3_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "engine/executor.h"
#include "engine/operation.h"
#include "sim/costs.h"
#include "sim/machine.h"

namespace dbs3 {

/// The simulated KSR1 used by every figure bench: 70 reservable processors
/// (of 72), with the calibrated engine-mechanism costs.
inline SimMachineConfig KsrConfig(const SimCosts& costs,
                                  size_t processors = 70) {
  SimMachineConfig config;
  config.processors = processors;
  config.thread_startup_cost = costs.thread_startup;
  config.queue_create_cost = costs.queue_create;
  config.queue_scan_cost = costs.queue_scan;
  config.seed = 42;
  return config;
}

/// Prints the standard bench header.
inline void PrintHeader(const char* figure, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", figure, title);
  std::printf("==============================================================\n");
}

/// Aborts the bench with the error printed (benches are non-interactive).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Per-thread busy fraction of one operation, normalized by the operation's
/// wall span (start to slowest worker's exit) — the paper's load-balance
/// signal (Section 5.4 plots its spread under skew). A thread that grabbed
/// a heavy trigger shows ~1.0 while its siblings, done early, show less.
inline std::vector<double> BusyFractions(const OperationStats& op) {
  std::vector<double> fractions(op.per_thread_busy_seconds.size(), 0.0);
  const double span = op.wall_span_seconds;
  for (size_t t = 0; t < fractions.size(); ++t) {
    fractions[t] = span > 0.0 ? op.per_thread_busy_seconds[t] / span : 0.0;
  }
  return fractions;
}

/// Prints one line per operation: busy/wall-span seconds, the per-thread
/// busy fractions, and the main-vs-secondary queue acquisition split.
inline void PrintThreadLoad(const ExecutionResult& execution) {
  for (const OperationStats& op : execution.op_stats) {
    std::printf("  %-10s busy=%.4fs span=%.4fs main/sec acq=%llu/%llu "
                "peak_q=%llu  busy frac:",
                op.name.c_str(), op.busy_seconds, op.wall_span_seconds,
                static_cast<unsigned long long>(op.main_queue_acquisitions),
                static_cast<unsigned long long>(op.secondary_queue_acquisitions),
                static_cast<unsigned long long>(op.peak_queue_units));
    for (double f : BusyFractions(op)) std::printf(" %.2f", f);
    std::printf("\n");
  }
}

/// Prints the query runtime's per-query latency summaries (admission wait,
/// execution wall, busy seconds — plus the shared-batch distributions when
/// shared-work execution kicked in) from a registry snapshot — the
/// multi-user companion of PrintThreadLoad. Quiet when no query ran
/// through the runtime. Tail percentiles come from each summary's sliding
/// reservoir (see MetricSummary::kReservoirSize).
inline void PrintQueryLatencies(const MetricsSnapshot& snapshot) {
  static constexpr const char* kSeries[] = {
      "runtime.admission_wait_us", "runtime.execution_wall_us",
      "runtime.busy_us", "shared.queries_per_batch",
      "shared.batch_window_wait_us"};
  for (const char* name : kSeries) {
    auto it = snapshot.series.find(name);
    if (it == snapshot.series.end() || it->second.samples == 0) continue;
    const SeriesStats& s = it->second;
    std::printf("  %-26s n=%llu mean=%.0f min=%lld", name,
                static_cast<unsigned long long>(s.samples), s.mean(),
                static_cast<long long>(s.min));
    if (s.has_percentiles) {
      std::printf(" p50=%lld p95=%lld p99=%lld",
                  static_cast<long long>(s.p50),
                  static_cast<long long>(s.p95),
                  static_cast<long long>(s.p99));
    }
    std::printf(" max=%lld\n", static_cast<long long>(s.max));
  }
}

}  // namespace dbs3

#endif  // DBS3_BENCH_BENCH_UTIL_H_

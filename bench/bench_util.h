#ifndef DBS3_BENCH_BENCH_UTIL_H_
#define DBS3_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "sim/costs.h"
#include "sim/machine.h"

namespace dbs3 {

/// The simulated KSR1 used by every figure bench: 70 reservable processors
/// (of 72), with the calibrated engine-mechanism costs.
inline SimMachineConfig KsrConfig(const SimCosts& costs,
                                  size_t processors = 70) {
  SimMachineConfig config;
  config.processors = processors;
  config.thread_startup_cost = costs.thread_startup;
  config.queue_create_cost = costs.queue_create;
  config.queue_scan_cost = costs.queue_scan;
  config.seed = 42;
  return config;
}

/// Prints the standard bench header.
inline void PrintHeader(const char* figure, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", figure, title);
  std::printf("==============================================================\n");
}

/// Aborts the bench with the error printed (benches are non-interactive).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace dbs3

#endif  // DBS3_BENCH_BENCH_UTIL_H_

// Ablation study of the engine's design choices (the knobs DESIGN.md calls
// out), on the simulated KSR1:
//   (a) main/secondary queue split vs. fully shared queues,
//   (b) internal activation cache size,
//   (c) LPT via static fragment-size ordering vs. Random.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

double RunIdeal(const JoinWorkloadSpec& spec, const SimCosts& costs,
                bool main_queues) {
  SimPlanSpec plan = UnwrapOrDie(BuildIdealJoinSim(spec, costs), "build");
  SimMachineConfig config = KsrConfig(costs);
  config.use_main_queues = main_queues;
  SimMachine machine(config);
  return UnwrapOrDie(machine.Run(plan), "run").elapsed;
}

double RunAssocCache(const JoinWorkloadSpec& spec, const SimCosts& costs) {
  SimPlanSpec plan = UnwrapOrDie(BuildAssocJoinSim(spec, costs), "build");
  SimMachine machine(KsrConfig(costs));
  return UnwrapOrDie(machine.Run(plan), "run").elapsed;
}

void Run() {
  PrintHeader("Ablation", "engine design knobs on the simulated KSR1");
  SimCosts costs;

  std::printf("\n(a) main/secondary queue split (IdealJoin, 100K/10K, "
              "degree 200, 10 threads)\n");
  std::printf("%6s %18s %18s\n", "zipf", "with main queues",
              "all-shared queues");
  for (double theta : {0.0, 0.6, 1.0}) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 100'000;
    spec.b_cardinality = 10'000;
    spec.degree = 200;
    spec.theta = theta;
    spec.threads = 10;
    spec.strategy = Strategy::kLpt;
    std::printf("%6.1f %16.2fs %17.2fs\n", theta,
                RunIdeal(spec, costs, true), RunIdeal(spec, costs, false));
  }
  std::printf("(virtual time is equal — the split exists to cut mutex "
              "interference, which the\n DES does not charge; see "
              "micro_engine for the real-thread cost)\n");

  std::printf("\n(b) internal activation cache size (AssocJoin, 100K/10K, "
              "degree 1000, 20 threads)\n");
  std::printf("%8s %14s\n", "cache", "time(s)");
  for (size_t cache : {1ul, 4ul, 16ul, 64ul, 256ul}) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 100'000;
    spec.b_cardinality = 10'000;
    spec.degree = 1'000;
    spec.theta = 0.0;
    spec.threads = 20;
    spec.cache_size = cache;
    std::printf("%8zu %14.2f\n", cache, RunAssocCache(spec, costs));
  }
  std::printf("(larger batches amortize the queue-access overhead; past "
              "~64 the gain flattens\n while tail imbalance grows)\n");

  std::printf("\n(c) consumption strategy (IdealJoin, Zipf 0.8, degree 200, "
              "10 threads)\n");
  JoinWorkloadSpec spec;
  spec.a_cardinality = 100'000;
  spec.b_cardinality = 10'000;
  spec.degree = 200;
  spec.theta = 0.8;
  spec.threads = 10;
  spec.strategy = Strategy::kRandom;
  const double random_t = RunIdeal(spec, costs, true);
  spec.strategy = Strategy::kLpt;
  const double lpt_t = RunIdeal(spec, costs, true);
  std::printf("  Random: %.2f s   LPT (static fragment-size order): %.2f s "
              "  (%.0f%% better)\n",
              random_t, lpt_t, 100.0 * (1.0 - lpt_t / random_t));
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Reproduces Figure 15: IdealJoin speed-up vs. number of threads, for
// several skew factors.
//
// Paper setup: A=200K, B'=20K, 200 fragments, nested loop, 70 processors;
// Tseq = 956 s. Expected: unskewed speed-up > 60 at 70 threads; skewed
// curves plateau at nmax = (a x P) / Pmax — the paper derives nmax = 6 for
// Zipf 1, 19 for 0.6, 40 for 0.4 — because past that the single longest
// activation bounds the response time.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/analysis.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

void Run() {
  PrintHeader("Figure 15", "IdealJoin speed-up vs number of threads");
  std::printf("A=200K, B'=20K, degree=200, nested loop, LPT, 70 processors\n");
  std::printf("paper: Tseq = 956 s; ceilings nmax = 40 (Zipf .4), 19 (.6), "
              "6 (1.0)\n\n");

  SimCosts costs;
  const double thetas[] = {0.0, 0.4, 0.6, 1.0};

  JoinWorkloadSpec base;
  base.a_cardinality = 200'000;
  base.b_cardinality = 20'000;
  base.degree = 200;
  base.strategy = Strategy::kLpt;

  // Sequential reference and per-skew analytical ceilings.
  base.theta = 0.0;
  OperationProfile p0 =
      UnwrapOrDie(JoinProfile(base, costs, /*pipelined=*/false), "profile");
  const double tseq = p0.TotalWork();
  std::printf("sequential time Tseq = %.0f s (paper: 956 s)\n", tseq);
  std::printf("analytical nmax:");
  for (double theta : thetas) {
    JoinWorkloadSpec spec = base;
    spec.theta = theta;
    OperationProfile p =
        UnwrapOrDie(JoinProfile(spec, costs, false), "profile");
    std::printf("  Zipf %.1f -> %.1f", theta, NMax(p));
  }
  std::printf("   (paper: 40 @ 0.4, 19 @ 0.6, 6 @ 1.0)\n\n");

  std::printf("%8s %10s %10s %10s %10s %12s\n", "threads", "Zipf=0",
              "Zipf=0.4", "Zipf=0.6", "Zipf=1", "theoretical");
  for (size_t n : {1ul, 5ul, 10ul, 20ul, 30ul, 40ul, 50ul, 60ul, 70ul,
                   80ul, 90ul, 100ul}) {
    std::printf("%8zu", n);
    for (double theta : thetas) {
      JoinWorkloadSpec spec = base;
      spec.threads = n;
      spec.theta = theta;
      SimPlanSpec plan =
          UnwrapOrDie(BuildIdealJoinSim(spec, costs), "build");
      SimMachine machine(KsrConfig(costs));
      SimResult result = UnwrapOrDie(machine.Run(plan), "run");
      std::printf(" %10.1f", tseq / result.elapsed);
    }
    std::printf(" %12zu\n", std::min<size_t>(n, 70));
  }
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Extension: multi-user execution on the REAL engine — the concurrent
// query runtime (shared worker pool + admission control) against the
// legacy one-query-at-a-time path, at equal total thread count.
//
// The benchmark sweeps the number of concurrent IdealJoin sessions
// (1..8, mirroring the simulator's multi-user study). At each point the
// same batch runs (a) sequentially through the direct path, where every
// query spawns and joins its own per-operation threads, and (b)
// concurrently through Database::Submit, where all sessions draw
// workers from one engine-wide pool sized like the sequential run's
// thread allocation. Admission control caps in-flight execution at
// kAdmissionLevel: the clients submit the whole batch at once, and the
// controller — not the clients — picks the multiprogramming level the
// machine can sustain. On this benchmark's single-socket host the
// sustainable level is 1 (higher levels just interleave working sets
// and thrash the cache, the thrashing the paper's admission argument
// exists to prevent), so the measured win in (b) is the amortization
// the paper attributes to thread-pool reuse: worker start-up/tear-down
// leaves the per-query critical path.
//
// Writes BENCH_multiuser.json next to the binary; the CI gate reads the
// top-level "speedup" (the 8-session point) and expects > 1.0.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "dbs3/database.h"
#include "dbs3/query.h"
#include "server/query_runtime.h"

namespace dbs3 {
namespace {

constexpr size_t kSweep[] = {1, 2, 4, 8};  // Concurrent sessions.
constexpr size_t kGateSessions = 8;        // Headline/gate point.
constexpr size_t kThreads = 4;             // Total threads, both modes.
constexpr int kReps = 5;                   // Best-of to damp noise.
// In-flight execution cap chosen by admission control; see file comment.
constexpr size_t kAdmissionLevel = 1;

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

struct ModeResult {
  size_t sessions = 0;
  double wall_s = 0.0;
  std::vector<double> latencies_s;  // Per-session, sorted.
  double p50() const { return latencies_s[latencies_s.size() / 2]; }
  double p95() const {
    return latencies_s[(latencies_s.size() * 95) / 100];
  }
  double p99() const {
    return latencies_s[(latencies_s.size() * 99) / 100];
  }
  double max() const { return latencies_s.back(); }
  double qps() const {
    return wall_s > 0 ? static_cast<double>(sessions) / wall_s : 0.0;
  }
};

struct SweepPoint {
  ModeResult sequential;
  ModeResult concurrent;
  double speedup() const {
    return concurrent.wall_s > 0
               ? sequential.wall_s / concurrent.wall_s
               : 0.0;
  }
};

QueryOptions BaseOptions() {
  QueryOptions options;
  options.schedule.total_threads = kThreads;
  options.schedule.processors = kThreads;
  return options;
}

/// One rep of the legacy path: `sessions` queries back to back, each
/// spawning its own per-operation threads inside Executor::Run.
ModeResult RunSequential(Database& db, size_t sessions) {
  QueryOptions options = BaseOptions();
  options.use_shared_runtime = false;
  ModeResult out;
  out.sessions = sessions;
  const auto start = std::chrono::steady_clock::now();
  for (size_t s = 0; s < sessions; ++s) {
    const auto q0 = std::chrono::steady_clock::now();
    auto r = RunIdealJoin(db, "A", "key", "Bp", "key", options);
    CheckOk(r.status(), "sequential IdealJoin");
    out.latencies_s.push_back(
        Seconds(std::chrono::steady_clock::now() - q0));
  }
  out.wall_s = Seconds(std::chrono::steady_clock::now() - start);
  std::sort(out.latencies_s.begin(), out.latencies_s.end());
  return out;
}

/// One rep of the concurrent runtime: `sessions` queries submitted at
/// once onto the shared pool; latency = admission wait + engine wall.
ModeResult RunConcurrent(Database& db, size_t sessions) {
  const QueryOptions options = BaseOptions();
  ModeResult out;
  out.sessions = sessions;
  const auto start = std::chrono::steady_clock::now();
  std::vector<QueryHandle> handles;
  handles.reserve(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    handles.push_back(SubmitIdealJoin(db, "A", "key", "Bp", "key", options));
  }
  for (QueryHandle& handle : handles) {
    auto r = handle.Take();
    CheckOk(r.status(), "concurrent IdealJoin");
  }
  out.wall_s = Seconds(std::chrono::steady_clock::now() - start);
  for (const QueryHandle& handle : handles) {
    const QueryRunStats stats = handle.stats();
    out.latencies_s.push_back(stats.admission_wait_seconds +
                              stats.execution_seconds);
  }
  std::sort(out.latencies_s.begin(), out.latencies_s.end());
  return out;
}

void Run() {
  PrintHeader("Extension: multi-user engine",
              "IdealJoin session sweep, shared worker pool vs sequential "
              "private threads (equal total threads)");

  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 8'000;
  spec.b_cardinality = 800;
  spec.degree = 16;
  spec.theta = 0.3;
  spec.seed = 11;
  CheckOk(db.CreateSkewedPair(spec, "A", "Bp"), "CreateSkewedPair");

  QueryRuntimeOptions runtime_options;
  runtime_options.pool_threads = kThreads;
  runtime_options.max_concurrent_queries = kAdmissionLevel;
  CheckOk(db.StartRuntime(runtime_options), "StartRuntime");

  // Warm both paths (relation pages, allocator) outside the timed reps.
  {
    QueryOptions warm = BaseOptions();
    warm.use_shared_runtime = false;
    CheckOk(RunIdealJoin(db, "A", "key", "Bp", "key", warm).status(),
            "warmup direct");
    CheckOk(RunIdealJoin(db, "A", "key", "Bp", "key", BaseOptions())
                .status(),
            "warmup runtime");
  }

  std::vector<SweepPoint> points;
  for (size_t sessions : kSweep) {
    SweepPoint point;
    for (int rep = 0; rep < kReps; ++rep) {
      ModeResult s = RunSequential(db, sessions);
      if (rep == 0 || s.wall_s < point.sequential.wall_s) {
        point.sequential = s;
      }
      ModeResult c = RunConcurrent(db, sessions);
      if (rep == 0 || c.wall_s < point.concurrent.wall_s) {
        point.concurrent = c;
      }
    }
    points.push_back(point);
  }

  std::printf("%9s %14s %12s %12s %12s %12s %12s %12s\n", "sessions", "mode",
              "wall(s)", "q/s", "p50(s)", "p95(s)", "p99(s)", "max(s)");
  for (const SweepPoint& point : points) {
    std::printf("%9zu %14s %12.4f %12.2f %12.4f %12.4f %12.4f %12.4f\n",
                point.sequential.sessions, "sequential",
                point.sequential.wall_s, point.sequential.qps(),
                point.sequential.p50(), point.sequential.p95(),
                point.sequential.p99(), point.sequential.max());
    std::printf("%9s %14s %12.4f %12.2f %12.4f %12.4f %12.4f %12.4f\n", "",
                "shared-pool", point.concurrent.wall_s,
                point.concurrent.qps(), point.concurrent.p50(),
                point.concurrent.p95(), point.concurrent.p99(),
                point.concurrent.max());
  }

  const SweepPoint& gate = points.back();
  std::printf("\nbatch speedup at %zu sessions (sequential wall / "
              "shared-pool wall): %.3fx\n\n",
              kGateSessions, gate.speedup());
  std::printf("per-query latency summaries (runtime registry):\n");
  PrintQueryLatencies(db.metrics().Snapshot());

  FILE* json = std::fopen("BENCH_multiuser.json", "w");
  CheckOk(json != nullptr
              ? Status::OK()
              : Status::Internal("cannot open BENCH_multiuser.json"),
          "open json");
  std::fprintf(json,
               "{\n"
               "  \"sessions\": %zu,\n"
               "  \"total_threads\": %zu,\n"
               "  \"admission_level\": %zu,\n"
               "  \"sweep\": [\n",
               kGateSessions, kThreads, kAdmissionLevel);
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(json,
                 "    {\"sessions\": %zu,"
                 " \"sequential_wall_s\": %.6f,"
                 " \"sequential_qps\": %.4f,"
                 " \"sequential_p50_s\": %.6f,"
                 " \"sequential_p95_s\": %.6f,"
                 " \"sequential_p99_s\": %.6f,"
                 " \"sequential_max_s\": %.6f,"
                 " \"concurrent_wall_s\": %.6f,"
                 " \"concurrent_qps\": %.4f,"
                 " \"concurrent_p50_s\": %.6f,"
                 " \"concurrent_p95_s\": %.6f,"
                 " \"concurrent_p99_s\": %.6f,"
                 " \"concurrent_max_s\": %.6f,"
                 " \"speedup\": %.4f}%s\n",
                 p.sequential.sessions, p.sequential.wall_s,
                 p.sequential.qps(), p.sequential.p50(),
                 p.sequential.p95(), p.sequential.p99(),
                 p.sequential.max(), p.concurrent.wall_s,
                 p.concurrent.qps(), p.concurrent.p50(),
                 p.concurrent.p95(), p.concurrent.p99(),
                 p.concurrent.max(), p.speedup(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"sequential_qps\": %.4f,\n"
               "  \"concurrent_qps\": %.4f,\n"
               "  \"speedup\": %.4f\n"
               "}\n",
               gate.sequential.qps(), gate.concurrent.qps(),
               gate.speedup());
  std::fclose(json);
  std::printf("\nwrote BENCH_multiuser.json (gate speedup %.3fx at %zu "
              "sessions; CI expects > 1.0)\n",
              gate.speedup(), kGateSessions);
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

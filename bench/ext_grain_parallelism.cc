// Extension: the paper's future work (Section 6) — "allowing the choice of
// the grain of parallelism independent of the operation semantics".
//
// A triggered join's sequential unit of work is a whole fragment pair
// (coarse grain: skew-sensitive, low overhead); a pipelined join's is one
// tuple (fine grain: skew-insensitive, high overhead). Here the triggered
// IdealJoin is *chunked*: each fragment's work is split into activations of
// `grain` outer tuples, independent of the operator's semantics. Sweeping
// the grain exposes the trade-off the conclusion describes and shows a
// broad optimum.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/zipf.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

/// IdealJoin on the skewed database, with fragment work split into chunks
/// of `grain` outer tuples. Modeled as a zero-cost chunker (the executor's
/// trigger source) feeding the join instances their chunk activations.
SimPlanSpec BuildChunkedIdealJoin(uint64_t a_card, uint64_t b_card,
                                  size_t degree, double theta, size_t threads,
                                  uint64_t grain, const SimCosts& costs) {
  const std::vector<uint64_t> a = ZipfCounts(a_card, degree, theta);
  const std::vector<uint64_t> b = ZipfCounts(b_card, degree, 0.0);

  SimOpSpec chunker;
  chunker.name = "chunker";
  chunker.instances = 1;
  chunker.threads = 1;
  chunker.output = 1;
  chunker.triggers.resize(1);
  chunker.triggers[0].cost = 0.0;

  SimOpSpec join;
  join.name = "join";
  join.instances = degree;
  join.threads = std::min(threads, degree);
  join.strategy = Strategy::kLpt;
  join.data_cost.resize(degree);
  std::vector<double> estimates(degree);
  for (size_t i = 0; i < degree; ++i) {
    const uint64_t chunks = std::max<uint64_t>((a[i] + grain - 1) / grain, 1);
    // Cost of one chunk: its share of the fragment's outer tuples, each
    // scanning the inner fragment, plus result materialization.
    const double rows_per_chunk =
        static_cast<double>(a[i]) / static_cast<double>(chunks);
    join.data_cost[i] =
        rows_per_chunk *
        (static_cast<double>(b[i]) * costs.nl_pair + costs.store_tuple);
    chunker.triggers[0].emissions.push_back(
        {static_cast<uint32_t>(i), chunks});
    estimates[i] = join.data_cost[i];
  }
  join.cost_estimates = std::move(estimates);

  SimPlanSpec plan;
  plan.ops.push_back(std::move(chunker));
  plan.ops.push_back(std::move(join));
  return plan;
}

void Run() {
  PrintHeader("Extension: grain of parallelism",
              "chunked triggered join, grain swept (paper Section 6 "
              "future work)");
  std::printf("A=200K (Zipf=1), B'=20K, degree=200, 20 threads, LPT\n");
  std::printf("coarse grain = whole fragment (skew-bound); fine grain = "
              "tuple (overhead-bound)\n\n");

  SimCosts costs;
  const uint64_t a_card = 200'000, b_card = 20'000;
  const size_t degree = 200, threads = 20;
  const double theta = 1.0;

  // Reference points: classic triggered (fragment grain) and ideal time.
  JoinWorkloadSpec classic;
  classic.a_cardinality = a_card;
  classic.b_cardinality = b_card;
  classic.degree = degree;
  classic.theta = theta;
  classic.threads = threads;
  classic.strategy = Strategy::kLpt;
  SimPlanSpec classic_plan =
      UnwrapOrDie(BuildIdealJoinSim(classic, costs), "build");
  SimMachine classic_machine(KsrConfig(costs));
  const double fragment_grain =
      UnwrapOrDie(classic_machine.Run(classic_plan), "run").elapsed;

  std::printf("%12s %14s %16s\n", "grain(rows)", "time(s)", "activations");
  for (uint64_t grain : {1ul, 8ul, 64ul, 256ul, 1024ul, 4096ul, 16384ul}) {
    SimPlanSpec plan = BuildChunkedIdealJoin(a_card, b_card, degree, theta,
                                             threads, grain, costs);
    uint64_t activations = 0;
    for (const auto& e : plan.ops[0].triggers[0].emissions) {
      activations += e.count;
    }
    SimMachine machine(KsrConfig(costs));
    const double t = UnwrapOrDie(machine.Run(plan), "run").elapsed;
    std::printf("%12llu %14.2f %16llu\n",
                static_cast<unsigned long long>(grain), t,
                static_cast<unsigned long long>(activations));
  }
  std::printf("%12s %14.2f %16zu   (classic triggered operation)\n",
              "fragment", fragment_grain, degree);
  std::printf("\nshape: response time falls as the grain shrinks below the "
              "skew ceiling, then\nflattens at the ideal time; per-"
              "activation overhead only bites at grain ~1.\n");
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Reproduces Figure 17: execution time vs. degree of partitioning with a
// temporary index.
//
// Paper setup: 500K/50K unskewed relations, 20 threads, on-the-fly
// temporary index, degree 20..1500. Expected: a U shape — smaller fragments
// make the index cheaper to build and probe, until the partitioning
// overhead dominates (past d ~ 1000 for AssocJoin, d ~ 1400 for IdealJoin);
// absolute times in the 4..12 s range.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

double RunQuery(bool assoc, size_t degree, const SimCosts& costs) {
  JoinWorkloadSpec spec;
  spec.a_cardinality = 500'000;
  spec.b_cardinality = 50'000;
  spec.degree = degree;
  spec.theta = 0.0;
  spec.threads = 20;
  spec.algorithm = JoinAlgorithm::kTempIndex;
  // Production cache setting: with 50K probe activations the pipelined join
  // drains its queues in batches (the engine's internal activation cache).
  spec.cache_size = 8;
  SimPlanSpec plan = UnwrapOrDie(
      assoc ? BuildAssocJoinSim(spec, costs) : BuildIdealJoinSim(spec, costs),
      "build");
  SimMachine machine(KsrConfig(costs));
  return UnwrapOrDie(machine.Run(plan), "run").elapsed;
}

void Run() {
  PrintHeader("Figure 17",
              "Execution time vs degree of partitioning (temp index)");
  std::printf("A=500K, B'=50K unskewed, 20 threads, temporary index\n");
  std::printf("paper: decreasing then rising; overhead dominates past d ~ "
              "1000 (AssocJoin) / ~1400 (IdealJoin)\n\n");

  const std::vector<size_t> degrees = {20,  100,  250,  500, 750,
                                       1000, 1250, 1500};
  SimCosts costs;
  std::printf("%8s %16s %16s\n", "degree", "IdealJoin(s)", "AssocJoin(s)");
  double prev_ideal = 0.0, prev_assoc = 0.0;
  size_t min_ideal_d = 0, min_assoc_d = 0;
  double min_ideal = 1e30, min_assoc = 1e30;
  for (size_t d : degrees) {
    const double t_ideal = RunQuery(false, d, costs);
    const double t_assoc = RunQuery(true, d, costs);
    std::printf("%8zu %16.2f %16.2f\n", d, t_ideal, t_assoc);
    if (t_ideal < min_ideal) {
      min_ideal = t_ideal;
      min_ideal_d = d;
    }
    if (t_assoc < min_assoc) {
      min_assoc = t_assoc;
      min_assoc_d = d;
    }
    prev_ideal = t_ideal;
    prev_assoc = t_assoc;
  }
  (void)prev_ideal;
  (void)prev_assoc;
  std::printf("\nminimum: IdealJoin at d=%zu (paper: gains until ~1400), "
              "AssocJoin at d=%zu (paper: gains until ~1000)\n",
              min_ideal_d, min_assoc_d);
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

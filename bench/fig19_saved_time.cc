// Reproduces Figure 19: time saved by increasing the degree of
// partitioning, IdealJoin with temporary index on skewed data.
//
// Paper setup: 500K/50K, Zipf 0.6, LPT, 20 threads. The saved time is the
// reduction of T_0.6 relative to the lowest degree (the figure's x axis
// starts at 40); the paper anchors the scale with the unskewed execution
// time T_0 = 7.34 s. Expected: several seconds saved — more than the whole
// unskewed execution time — flattening at high degree.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

double RunOne(size_t degree, double theta, const SimCosts& costs) {
  JoinWorkloadSpec spec;
  spec.a_cardinality = 500'000;
  spec.b_cardinality = 50'000;
  spec.degree = degree;
  spec.theta = theta;
  spec.threads = 20;
  spec.strategy = Strategy::kLpt;
  spec.algorithm = JoinAlgorithm::kTempIndex;
  SimPlanSpec plan = UnwrapOrDie(BuildIdealJoinSim(spec, costs), "build");
  SimMachine machine(KsrConfig(costs));
  return UnwrapOrDie(machine.Run(plan), "run").elapsed;
}

void Run() {
  PrintHeader("Figure 19",
              "Saved time vs degree, IdealJoin with temp index, Zipf 0.6");
  std::printf("A=500K, B'=50K, 20 threads, LPT\n");

  SimCosts costs;
  const double t0_unskewed = RunOne(250, 0.0, costs);
  std::printf("unskewed execution time T0 = %.2f s (paper: 7.34 s)\n\n",
              t0_unskewed);

  const double base = RunOne(40, 0.6, costs);
  std::printf("%8s %14s %14s\n", "degree", "T_0.6(s)", "saved(s)");
  for (size_t d : {40ul, 100ul, 250ul, 500ul, 750ul, 1000ul, 1250ul,
                   1500ul}) {
    const double t = RunOne(d, 0.6, costs);
    std::printf("%8zu %14.2f %14.2f\n", d, t, base - t);
  }
  std::printf("\npaper: saved time grows to ~8 s, exceeding the whole "
              "unskewed execution time\n");
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Reproduces Figure 12: AssocJoin execution time vs. skew factor.
//
// Paper setup (Section 5.4): relations A (100K tuples, Zipf-skewed) and B'
// (10K tuples), both partitioned in 200 fragments; AssocJoin with 10
// threads, Random consumption. The paper measures a *constant* execution
// time whatever the skew (the 10K pipelined activations absorb the skew),
// within 3% of the analytical worst case Tworst.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/analysis.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

void Run() {
  PrintHeader("Figure 12", "AssocJoin execution time vs skew (Zipf 0..1)");
  std::printf("A=100K, B'=10K, degree=200, threads=10, Random strategy\n");
  std::printf("paper: flat ~26-33 s band; measured within 3%% of Tworst\n\n");
  std::printf("%6s %14s %12s %12s %10s\n", "zipf", "measured(s)", "Tideal(s)",
              "Tworst(s)", "dev/worst");

  SimCosts costs;
  const size_t threads = 10;
  double min_time = 1e30, max_time = 0.0;
  for (int z = 0; z <= 10; ++z) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 100'000;
    spec.b_cardinality = 10'000;
    spec.degree = 200;
    spec.theta = 0.1 * z;
    spec.threads = threads;
    spec.strategy = Strategy::kRandom;
    SimPlanSpec plan = UnwrapOrDie(BuildAssocJoinSim(spec, costs), "build");
    SimMachine machine(KsrConfig(costs));
    SimResult result = UnwrapOrDie(machine.Run(plan), "run");

    // Analytical envelope of the pipelined join operation.
    OperationProfile profile =
        UnwrapOrDie(JoinProfile(spec, costs, /*pipelined=*/true), "profile");
    // The join's thread share (the transmit pool takes a slice of the 10).
    const size_t join_threads = plan.ops[1].threads;
    const double tideal = TIdeal(profile, join_threads);
    const double tworst = TWorst(profile, join_threads);
    std::printf("%6.1f %14.2f %12.2f %12.2f %9.1f%%\n", spec.theta,
                result.elapsed, tideal, tworst,
                100.0 * (result.elapsed / tworst - 1.0));
    min_time = std::min(min_time, result.elapsed);
    max_time = std::max(max_time, result.elapsed);
  }
  std::printf("\nspread over all skews: %.1f%% (paper: constant time, "
              "max deviation ~3%%)\n",
              100.0 * (max_time / min_time - 1.0));
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

// Reproduces Figure 12: AssocJoin execution time vs. skew factor.
//
// Paper setup (Section 5.4): relations A (100K tuples, Zipf-skewed) and B'
// (10K tuples), both partitioned in 200 fragments; AssocJoin with 10
// threads, Random consumption. The paper measures a *constant* execution
// time whatever the skew (the 10K pipelined activations absorb the skew),
// within 3% of the analytical worst case Tworst.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "dbs3/database.h"
#include "dbs3/query.h"
#include "model/analysis.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

void Run() {
  PrintHeader("Figure 12", "AssocJoin execution time vs skew (Zipf 0..1)");
  std::printf("A=100K, B'=10K, degree=200, threads=10, Random strategy\n");
  std::printf("paper: flat ~26-33 s band; measured within 3%% of Tworst\n\n");
  std::printf("%6s %14s %12s %12s %10s\n", "zipf", "measured(s)", "Tideal(s)",
              "Tworst(s)", "dev/worst");

  SimCosts costs;
  const size_t threads = 10;
  double min_time = 1e30, max_time = 0.0;
  for (int z = 0; z <= 10; ++z) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 100'000;
    spec.b_cardinality = 10'000;
    spec.degree = 200;
    spec.theta = 0.1 * z;
    spec.threads = threads;
    spec.strategy = Strategy::kRandom;
    SimPlanSpec plan = UnwrapOrDie(BuildAssocJoinSim(spec, costs), "build");
    SimMachine machine(KsrConfig(costs));
    SimResult result = UnwrapOrDie(machine.Run(plan), "run");

    // Analytical envelope of the pipelined join operation.
    OperationProfile profile =
        UnwrapOrDie(JoinProfile(spec, costs, /*pipelined=*/true), "profile");
    // The join's thread share (the transmit pool takes a slice of the 10).
    const size_t join_threads = plan.ops[1].threads;
    const double tideal = TIdeal(profile, join_threads);
    const double tworst = TWorst(profile, join_threads);
    std::printf("%6.1f %14.2f %12.2f %12.2f %9.1f%%\n", spec.theta,
                result.elapsed, tideal, tworst,
                100.0 * (result.elapsed / tworst - 1.0));
    min_time = std::min(min_time, result.elapsed);
    max_time = std::max(max_time, result.elapsed);
  }
  std::printf("\nspread over all skews: %.1f%% (paper: constant time, "
              "max deviation ~3%%)\n",
              100.0 * (max_time / min_time - 1.0));
}

/// Per-instance skew of the join: max/mean of tuple units per instance.
double InstanceSpread(const OperationStats& join) {
  uint64_t max = 0, sum = 0;
  for (uint64_t c : join.per_instance_processed) {
    max = std::max(max, c);
    sum += c;
  }
  const double mean =
      join.per_instance_processed.empty()
          ? 0.0
          : static_cast<double>(sum) /
                static_cast<double>(join.per_instance_processed.size());
  return mean > 0.0 ? static_cast<double>(max) / mean : 0.0;
}

const OperationStats& JoinStats(const ExecutionResult& execution) {
  for (const OperationStats& op : execution.op_stats) {
    if (op.name == "join") return op;
  }
  std::fprintf(stderr, "no join operation in execution\n");
  std::exit(1);
}

/// The same experiment on the real multithreaded engine, with the
/// activation tracer on: the per-instance tuple counts carry the Zipf skew,
/// while the per-thread busy fractions of the pipelined join stay flat —
/// the shared thread pool absorbing instance skew is exactly the paper's
/// point. The theta=1 run dumps a chrome://tracing-loadable span file. A
/// triggered IdealJoin on the same skewed data is traced as the contrast:
/// there the skew *does* surface in the per-thread busy fractions.
void RunEngineTraced() {
  std::printf("\n--- real engine, activation tracing on "
              "(A=40K zipf, B'=8K, degree=32, threads=4) ---\n");
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 40'000;
  spec.b_cardinality = 8'000;
  spec.degree = 32;

  for (int z = 0; z <= 1; ++z) {
    spec.theta = static_cast<double>(z);
    const std::string a = "A" + std::to_string(z);
    const std::string b = "B" + std::to_string(z);
    CheckOk(db.CreateSkewedPair(spec, a, b), "CreateSkewedPair");

    QueryOptions options;
    options.schedule.total_threads = 4;
    options.schedule.processors = 4;
    options.schedule.trace.enabled = true;
    if (z == 1) options.schedule.trace.path = "BENCH_fig12_trace.json";
    // A (skewed) is the transmitted probe, B' the partitioned inner — the
    // paper's orientation, so the Zipf lands on the join instances.
    QueryResult r = UnwrapOrDie(RunAssocJoin(db, a, "key", b, "key", options),
                                "AssocJoin");
    const OperationStats& join = JoinStats(r.execution);
    std::printf("AssocJoin  zipf=%d: wall %.2f ms, join instance spread "
                "(max/mean) %.2f\n",
                z, r.execution.seconds * 1e3, InstanceSpread(join));
    PrintThreadLoad(r.execution);
  }
  std::printf("wrote BENCH_fig12_trace.json (chrome://tracing)\n");

  // Contrast: the triggered IdealJoin has one activation per instance, so
  // instance skew lands on whichever thread grabbed the heavy trigger.
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  options.schedule.force_strategy = Strategy::kRandom;
  options.schedule.trace.enabled = true;
  QueryResult r = UnwrapOrDie(RunIdealJoin(db, "A1", "key", "B1", "key",
                                           options), "IdealJoin");
  std::printf("IdealJoin  zipf=1 (triggered, Random): wall %.2f ms, join "
              "instance spread %.2f\n",
              r.execution.seconds * 1e3, InstanceSpread(JoinStats(r.execution)));
  PrintThreadLoad(r.execution);
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  dbs3::RunEngineTraced();
  return 0;
}

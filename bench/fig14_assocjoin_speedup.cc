// Reproduces Figure 14: AssocJoin speed-up vs. number of threads.
//
// Paper setup (Section 5.5): A=200K (Zipf-skewed or not), B'=20K, 200
// fragments, 70 reserved KSR1 processors, threads swept 1..100; Tseq =
// 1048 s. Expected shape: speed-up > 60 at 70 threads for unskewed data;
// the skewed curve (Zipf=1) tracks it closely — the 20,000 pipelined
// activations absorb the skew (worst-case overhead 12%, measured < 5%) —
// and speed-up decreases past 70 threads (no benefit in exceeding the
// processor count).

#include <cstdio>

#include "bench/bench_util.h"
#include "model/analysis.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

void Run() {
  PrintHeader("Figure 14", "AssocJoin speed-up vs number of threads");
  std::printf(
      "A=200K, B'=20K, degree=200, 70 processors, Random strategy\n");
  std::printf("paper: Tseq = 1048 s; speed-up > 60 @ 70 threads, skewed "
              "curve within ~5%% of unskewed\n\n");

  SimCosts costs;
  JoinWorkloadSpec base;
  base.a_cardinality = 200'000;
  base.b_cardinality = 20'000;
  base.degree = 200;
  base.strategy = Strategy::kRandom;

  // Sequential reference: total activation work (what one thread executes).
  base.threads = 1;
  base.theta = 0.0;
  SimPlanSpec seq_plan = UnwrapOrDie(BuildAssocJoinSim(base, costs), "build");
  double tseq = 0.0;
  for (const SimOpSpec& op : seq_plan.ops) {
    for (const SimTriggerActivation& t : op.triggers) tseq += t.cost;
    // Pipelined work is counted below via the profile.
  }
  OperationProfile profile0 =
      UnwrapOrDie(JoinProfile(base, costs, /*pipelined=*/true), "profile");
  tseq += profile0.TotalWork();
  std::printf("sequential time Tseq = %.0f s (paper: 1048 s)\n\n", tseq);

  std::printf("%8s %12s %12s %12s %10s\n", "threads", "unskewed",
              "Zipf=1", "theoretical", "v_worst");
  for (size_t n : {1ul, 10ul, 20ul, 30ul, 40ul, 50ul, 60ul, 70ul, 80ul,
                   90ul, 100ul}) {
    double speedup[2] = {0.0, 0.0};
    double vworst = 0.0;
    int idx = 0;
    for (double theta : {0.0, 1.0}) {
      JoinWorkloadSpec spec = base;
      spec.threads = n;
      spec.theta = theta;
      SimPlanSpec plan = UnwrapOrDie(BuildAssocJoinSim(spec, costs), "build");
      SimMachine machine(KsrConfig(costs));
      SimResult result = UnwrapOrDie(machine.Run(plan), "run");
      speedup[idx++] = tseq / result.elapsed;
      if (theta == 1.0) {
        OperationProfile p =
            UnwrapOrDie(JoinProfile(spec, costs, true), "profile");
        vworst = OverheadBound(p, plan.ops[1].threads);
      }
    }
    std::printf("%8zu %12.1f %12.1f %12zu %9.1f%%\n", n, speedup[0],
                speedup[1], std::min<size_t>(n, 70), 100.0 * vworst);
  }
  std::printf("\npaper note: with 70 threads and Zipf=1, v_worst = 34 x 69 "
              "/ 20000 = 11.7%%; measured never exceeded 5%%\n");
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

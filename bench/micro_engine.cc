// Micro-benchmarks of the engine mechanisms (google-benchmark): activation
// queue throughput with and without batching (the internal activation
// cache), strategy selection, join algorithms, and an end-to-end query.

#include <benchmark/benchmark.h>

#include "dbs3/database.h"
#include "dbs3/query.h"
#include "engine/activation_queue.h"
#include "engine/strategy.h"
#include "storage/skew.h"
#include "storage/temp_index.h"

namespace dbs3 {
namespace {

void BM_QueuePushPop(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ActivationQueue queue;
  std::vector<Activation> out;
  out.reserve(batch);
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      queue.Push(Activation::Data(Tuple({Value(int64_t{1})})));
    }
    out.clear();
    benchmark::DoNotOptimize(queue.PopBatch(batch, &out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_QueuePushPop)->Arg(1)->Arg(8)->Arg(64);

void BM_QueueVisitOrder(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> estimates(n);
  for (size_t i = 0; i < n; ++i) estimates[i] = static_cast<double>(i * 7 % 101);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueueVisitOrder(Strategy::kLpt, estimates, n));
  }
}
BENCHMARK(BM_QueueVisitOrder)->Arg(20)->Arg(200)->Arg(1500);

void BM_TempIndexBuild(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Fragment fragment;
  for (size_t k = 0; k < rows; ++k) {
    fragment.tuples.push_back(
        Tuple({Value(static_cast<int64_t>(k % (rows / 4 + 1))),
               Value(static_cast<int64_t>(k))}));
  }
  for (auto _ : state) {
    TempIndex index(fragment, 0);
    benchmark::DoNotOptimize(index.distinct_keys());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_TempIndexBuild)->Arg(1'000)->Arg(10'000);

void BM_TempIndexProbe(benchmark::State& state) {
  Fragment fragment;
  for (int64_t k = 0; k < 10'000; ++k) {
    fragment.tuples.push_back(Tuple({Value(k % 997), Value(k)}));
  }
  TempIndex index(fragment, 0);
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(Value(key)));
    key = (key + 1) % 997;
  }
}
BENCHMARK(BM_TempIndexProbe);

void RunJoinOnce(Database& db, JoinAlgorithm algorithm, size_t threads) {
  QueryOptions options;
  options.schedule.total_threads = threads;
  options.schedule.processors = threads;
  options.algorithm = algorithm;
  auto r = RunIdealJoin(db, "A", "key", "B", "key", options);
  if (!r.ok()) std::abort();
  benchmark::DoNotOptimize(r.value().result->cardinality());
}

void BM_IdealJoinEndToEnd(benchmark::State& state) {
  static Database* db = [] {
    auto* d = new Database(4);
    SkewSpec spec;
    spec.a_cardinality = 20'000;
    spec.b_cardinality = 2'000;
    spec.degree = 32;
    spec.theta = 0.5;
    if (!d->CreateSkewedPair(spec, "A", "B").ok()) std::abort();
    return d;
  }();
  const auto algorithm = static_cast<JoinAlgorithm>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    RunJoinOnce(*db, algorithm, threads);
  }
  state.SetLabel(JoinAlgorithmName(algorithm));
}
BENCHMARK(BM_IdealJoinEndToEnd)
    ->Args({static_cast<int>(JoinAlgorithm::kNestedLoop), 2})
    ->Args({static_cast<int>(JoinAlgorithm::kHash), 2})
    ->Args({static_cast<int>(JoinAlgorithm::kTempIndex), 2})
    ->Args({static_cast<int>(JoinAlgorithm::kHash), 4})
    ->Unit(benchmark::kMillisecond);

// Interference ablation on real threads: the same pipelined drain with and
// without the main/secondary queue split, reporting the fraction of queue
// mutex acquisitions that hit a held lock.
void BM_QueueInterference(benchmark::State& state) {
  const bool main_queues = state.range(0) != 0;
  uint64_t contended = 0, total = 0;
  uint64_t main_acq = 0, secondary_acq = 0;
  double busy = 0.0, span = 0.0;
  for (auto _ : state) {
    Database db(2);
    SkewSpec spec;
    spec.a_cardinality = 4'000;
    spec.b_cardinality = 2'000;
    spec.degree = 16;
    if (!db.CreateSkewedPair(spec, "A", "B").ok()) std::abort();
    Relation* a = db.relation("A").value();
    Relation result("res", a->schema(), 0,
                    Partitioner(PartitionKind::kModulo, 16));
    Plan plan;
    const size_t scan = plan.AddNode(
        "scan", ActivationMode::kTriggered, 16,
        std::make_unique<FilterLogic>(a, MatchAll()));
    const size_t store =
        plan.AddNode("store", ActivationMode::kPipelined, 16,
                     std::make_unique<StoreLogic>(&result));
    if (!plan.ConnectSameInstance(scan, store).ok()) std::abort();
    for (size_t i = 0; i < plan.num_nodes(); ++i) {
      plan.params(i).threads = 4;
      plan.params(i).use_main_queues = main_queues;
      plan.params(i).cache_size = 1;
    }
    Executor executor;
    auto run = executor.Run(plan);
    if (!run.ok()) std::abort();
    for (const OperationStats& op : run.value().op_stats) {
      contended += op.queue_contended;
      total += op.queue_acquisitions;
      main_acq += op.main_queue_acquisitions;
      secondary_acq += op.secondary_queue_acquisitions;
      busy += op.busy_seconds;
      span += op.wall_span_seconds;
    }
  }
  state.SetLabel(main_queues ? "main+secondary" : "all-shared");
  state.counters["contention_pct"] =
      total > 0 ? 100.0 * static_cast<double>(contended) /
                      static_cast<double>(total)
                : 0.0;
  // Share of batch acquisitions that came from a consumer's own main queues
  // (load-balancing steals are the remainder), and how much of the workers'
  // wall span was actual processing.
  const uint64_t acq = main_acq + secondary_acq;
  state.counters["main_queue_pct"] =
      acq > 0 ? 100.0 * static_cast<double>(main_acq) /
                    static_cast<double>(acq)
              : 0.0;
  state.counters["busy_over_span_pct"] = span > 0.0 ? 100.0 * busy / span
                                                    : 0.0;
}
BENCHMARK(BM_QueueInterference)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbs3

BENCHMARK_MAIN();

// Extension: shared-work execution — QPS of a flood of concurrent
// point-lookup and scan-heavy ESQL queries against one Wisconsin
// relation, shared-scan batching on vs off.
//
// Per concurrency level (64 / 256 / 1024 in-flight queries) the bench
// runs the identical submission flood twice: once with the admission
// batching window enabled (compatible queries fold into multi-query
// shared-scan plans — one relation pass serves the whole batch) and once
// with batching off (every query runs its own solo scan plan). Each mode
// is best-of-kReps; on the first rep every query's result relation is
// checked fragment-for-fragment against rows computed directly from the
// base relation (sorted within a fragment: several threads may drain one
// store queue, so intra-fragment order is not defined — in either mode).
//
// Writes BENCH_sharedscan.json next to the binary; the CI gate
// (compare_bench.py --sharedscan) requires every point's results to
// match and shared QPS to beat solo QPS at 256 concurrent queries.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dbs3/database.h"
#include "esql/planner.h"
#include "storage/relation.h"
#include "storage/wisconsin.h"

namespace dbs3 {
namespace {

constexpr int kReps = 3;  // Best-of to damp noise.
constexpr uint64_t kRows = 20'000;
constexpr size_t kDegree = 4;
constexpr size_t kDrivers = 4;
constexpr size_t kConcurrency[] = {64, 256, 1024};
constexpr size_t kGateConcurrency = 256;
// Batching knobs of the shared mode: generous K so a flood folds into a
// few wide batches, a window in the paper-era lookup-flood sweet spot.
constexpr size_t kMaxBatch = 64;
constexpr uint64_t kWindowUs = 1500;
// Range predicate of the scan-heavy queries: unique1 < 200 keeps 1%.
constexpr int64_t kRangeLimit = 200;

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Query i of the flood: 3 point lookups to 1 range scan, keys spread
/// over the whole key space deterministically.
std::string QueryText(size_t i) {
  if (i % 4 == 3) {
    return "SELECT * FROM wisc WHERE unique1 < " +
           std::to_string(kRangeLimit);
  }
  return "SELECT * FROM wisc WHERE unique1 = " +
         std::to_string((i * 7919) % kRows);
}

/// Reference rows for query i, computed straight off the base relation:
/// per-fragment, sorted within the fragment.
std::vector<std::vector<Tuple>> ExpectedFragments(const Relation& rel,
                                                  size_t unique1, size_t i) {
  const bool range = i % 4 == 3;
  const int64_t key = static_cast<int64_t>((i * 7919) % kRows);
  std::vector<std::vector<Tuple>> out(rel.degree());
  for (size_t f = 0; f < rel.degree(); ++f) {
    for (const Tuple& t : rel.fragment(f).tuples) {
      const int64_t v = t.at(unique1).AsInt();
      if (range ? v < kRangeLimit : v == key) out[f].push_back(t);
    }
    std::sort(out[f].begin(), out[f].end());
  }
  return out;
}

bool Matches(const Relation& result,
             const std::vector<std::vector<Tuple>>& expected) {
  if (result.degree() != expected.size()) return false;
  for (size_t f = 0; f < result.degree(); ++f) {
    std::vector<Tuple> got = result.fragment(f).tuples;
    std::sort(got.begin(), got.end());
    if (got != expected[f]) return false;
  }
  return true;
}

struct ModeResult {
  double wall_s = 0.0;  ///< Best-of-kReps.
  bool results_match = true;
  uint64_t shared_batches = 0;
  double mean_queries_per_batch = 0.0;

  double qps(size_t n) const {
    return wall_s > 0 ? static_cast<double>(n) / wall_s : 0.0;
  }
};

/// One flood of `n` queries, `shared` batching on or off. Fresh database
/// per call so the runtime sizing and metric counters start clean.
ModeResult RunMode(size_t n, bool shared) {
  ModeResult mode;
  for (int rep = 0; rep < kReps; ++rep) {
    Database db(4);
    WisconsinOptions wopt;
    wopt.cardinality = kRows;
    wopt.degree = kDegree;
    CheckOk(db.CreateWisconsin("wisc", wopt), "create wisc");
    QueryRuntimeOptions ropt;
    ropt.max_concurrent_queries = kDrivers;
    ropt.max_queued_queries = n + kDrivers;
    ropt.shared_batch_max_queries = shared ? kMaxBatch : 1;
    ropt.shared_batch_window_us = shared ? kWindowUs : 0;
    CheckOk(db.StartRuntime(ropt), "start runtime");
    Relation* rel = UnwrapOrDie(db.relation("wisc"), "wisc");
    const size_t unique1 =
        UnwrapOrDie(rel->schema().IndexOf("unique1"), "unique1 column");

    EsqlOptions options;  // share_work on; the runtime knobs decide.
    std::vector<QueryHandle> handles;
    handles.reserve(n);
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i) {
      handles.push_back(SubmitEsql(db, QueryText(i), options));
    }
    std::vector<QueryResult> results;
    results.reserve(n);
    for (QueryHandle& h : handles) {
      results.push_back(UnwrapOrDie(h.Take(), "query"));
    }
    const double wall = Seconds(std::chrono::steady_clock::now() - start);
    if (rep == 0 || wall < mode.wall_s) mode.wall_s = wall;

    if (rep == 0) {
      // Correctness pass: every query's result fragment-identical to rows
      // computed straight off the base relation.
      for (size_t i = 0; i < n; ++i) {
        if (!Matches(*results[i].result,
                     ExpectedFragments(*rel, unique1, i))) {
          mode.results_match = false;
          std::fprintf(stderr, "MISMATCH: %s (mode=%s)\n",
                       QueryText(i).c_str(), shared ? "shared" : "solo");
        }
      }
      const MetricsSnapshot snap = db.metrics().Snapshot();
      auto batches = snap.counters.find("runtime.shared_batches");
      if (batches != snap.counters.end()) {
        mode.shared_batches = batches->second;
      }
      auto per_batch = snap.series.find("shared.queries_per_batch");
      if (per_batch != snap.series.end()) {
        mode.mean_queries_per_batch = per_batch->second.mean();
      }
      if (shared) {
        std::printf("  [%zu queries, shared] registry:\n", n);
        PrintQueryLatencies(snap);
      }
    }
  }
  return mode;
}

struct SweepPoint {
  size_t concurrency = 0;
  ModeResult solo;
  ModeResult shared;
};

void Run() {
  PrintHeader("EXT sharedscan",
              "multi-query shared scans vs per-query plans (QPS)");
  std::printf("wisconsin %llu rows, degree %zu, %zu drivers; shared mode: "
              "window %lluus, max batch %zu\n\n",
              static_cast<unsigned long long>(kRows), kDegree, kDrivers,
              static_cast<unsigned long long>(kWindowUs), kMaxBatch);

  std::vector<SweepPoint> points;
  for (size_t n : kConcurrency) {
    SweepPoint point;
    point.concurrency = n;
    point.solo = RunMode(n, /*shared=*/false);
    point.shared = RunMode(n, /*shared=*/true);
    points.push_back(point);
  }

  std::printf("\n%12s %14s %14s %10s %10s %10s %8s\n", "concurrency",
              "solo q/s", "shared q/s", "speedup", "batches", "q/batch",
              "match");
  for (const SweepPoint& p : points) {
    std::printf("%12zu %14.1f %14.1f %9.2fx %10llu %10.1f %8s\n",
                p.concurrency, p.solo.qps(p.concurrency),
                p.shared.qps(p.concurrency),
                p.solo.wall_s > 0 ? p.solo.wall_s / p.shared.wall_s : 0.0,
                static_cast<unsigned long long>(p.shared.shared_batches),
                p.shared.mean_queries_per_batch,
                p.solo.results_match && p.shared.results_match ? "yes"
                                                               : "NO");
  }

  const SweepPoint* gate = nullptr;
  for (const SweepPoint& p : points) {
    if (p.concurrency == kGateConcurrency) gate = &p;
  }

  FILE* json = std::fopen("BENCH_sharedscan.json", "w");
  CheckOk(json != nullptr
              ? Status::OK()
              : Status::Internal("cannot open BENCH_sharedscan.json"),
          "open json");
  std::fprintf(json,
               "{\n"
               "  \"rows\": %llu,\n"
               "  \"degree\": %zu,\n"
               "  \"drivers\": %zu,\n"
               "  \"window_us\": %llu,\n"
               "  \"max_batch\": %zu,\n"
               "  \"points\": [\n",
               static_cast<unsigned long long>(kRows), kDegree, kDrivers,
               static_cast<unsigned long long>(kWindowUs), kMaxBatch);
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        json,
        "    {\"concurrency\": %zu,"
        " \"solo_qps\": %.2f,"
        " \"shared_qps\": %.2f,"
        " \"speedup\": %.4f,"
        " \"shared_batches\": %llu,"
        " \"mean_queries_per_batch\": %.2f,"
        " \"results_match\": %s}%s\n",
        p.concurrency, p.solo.qps(p.concurrency),
        p.shared.qps(p.concurrency),
        p.shared.wall_s > 0 ? p.solo.wall_s / p.shared.wall_s : 0.0,
        static_cast<unsigned long long>(p.shared.shared_batches),
        p.shared.mean_queries_per_batch,
        p.solo.results_match && p.shared.results_match ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  const double gate_solo = gate != nullptr ? gate->solo.qps(kGateConcurrency) : 0.0;
  const double gate_shared =
      gate != nullptr ? gate->shared.qps(kGateConcurrency) : 0.0;
  std::fprintf(json,
               "  ],\n"
               "  \"gate_concurrency\": %zu,\n"
               "  \"gate_solo_qps\": %.2f,\n"
               "  \"gate_shared_qps\": %.2f\n"
               "}\n",
               kGateConcurrency, gate_solo, gate_shared);
  std::fclose(json);
  std::printf("\nwrote BENCH_sharedscan.json (gate: shared %.1f q/s vs "
              "solo %.1f q/s at %zu concurrent; CI expects shared > solo)\n",
              gate_shared, gate_solo, kGateConcurrency);
}

}  // namespace
}  // namespace dbs3

int main() {
  dbs3::Run();
  return 0;
}

# Empty compiler generated dependencies file for multiuser_throughput.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multiuser_throughput.dir/multiuser_throughput.cc.o"
  "CMakeFiles/multiuser_throughput.dir/multiuser_throughput.cc.o.d"
  "multiuser_throughput"
  "multiuser_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/esql_shell.dir/esql_shell.cc.o"
  "CMakeFiles/esql_shell.dir/esql_shell.cc.o.d"
  "esql_shell"
  "esql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

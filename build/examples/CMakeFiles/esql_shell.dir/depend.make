# Empty dependencies file for esql_shell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/skew_tuning.dir/skew_tuning.cc.o"
  "CMakeFiles/skew_tuning.dir/skew_tuning.cc.o.d"
  "skew_tuning"
  "skew_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for skew_tuning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wisconsin_queries.dir/wisconsin_queries.cc.o"
  "CMakeFiles/wisconsin_queries.dir/wisconsin_queries.cc.o.d"
  "wisconsin_queries"
  "wisconsin_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisconsin_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

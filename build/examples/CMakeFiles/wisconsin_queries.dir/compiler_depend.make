# Empty compiler generated dependencies file for wisconsin_queries.
# This may be replaced when dependencies are built.

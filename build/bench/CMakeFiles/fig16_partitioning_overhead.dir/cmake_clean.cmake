file(REMOVE_RECURSE
  "CMakeFiles/fig16_partitioning_overhead.dir/fig16_partitioning_overhead.cc.o"
  "CMakeFiles/fig16_partitioning_overhead.dir/fig16_partitioning_overhead.cc.o.d"
  "fig16_partitioning_overhead"
  "fig16_partitioning_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_partitioning_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

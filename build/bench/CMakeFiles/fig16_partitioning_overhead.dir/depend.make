# Empty dependencies file for fig16_partitioning_overhead.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig19_saved_time.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_multiuser.dir/ext_multiuser.cc.o"
  "CMakeFiles/ext_multiuser.dir/ext_multiuser.cc.o.d"
  "ext_multiuser"
  "ext_multiuser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_multiuser.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig13_idealjoin_skew.dir/fig13_idealjoin_skew.cc.o"
  "CMakeFiles/fig13_idealjoin_skew.dir/fig13_idealjoin_skew.cc.o.d"
  "fig13_idealjoin_skew"
  "fig13_idealjoin_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_idealjoin_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

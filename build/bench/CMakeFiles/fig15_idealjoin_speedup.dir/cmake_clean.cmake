file(REMOVE_RECURSE
  "CMakeFiles/fig15_idealjoin_speedup.dir/fig15_idealjoin_speedup.cc.o"
  "CMakeFiles/fig15_idealjoin_speedup.dir/fig15_idealjoin_speedup.cc.o.d"
  "fig15_idealjoin_speedup"
  "fig15_idealjoin_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_idealjoin_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig15_idealjoin_speedup.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_grain_parallelism.dir/ext_grain_parallelism.cc.o"
  "CMakeFiles/ext_grain_parallelism.dir/ext_grain_parallelism.cc.o.d"
  "ext_grain_parallelism"
  "ext_grain_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_grain_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

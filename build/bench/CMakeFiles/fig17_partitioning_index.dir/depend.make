# Empty dependencies file for fig17_partitioning_index.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig17_partitioning_index.dir/fig17_partitioning_index.cc.o"
  "CMakeFiles/fig17_partitioning_index.dir/fig17_partitioning_index.cc.o.d"
  "fig17_partitioning_index"
  "fig17_partitioning_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_partitioning_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

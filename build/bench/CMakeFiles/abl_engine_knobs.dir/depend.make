# Empty dependencies file for abl_engine_knobs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_engine_knobs.dir/abl_engine_knobs.cc.o"
  "CMakeFiles/abl_engine_knobs.dir/abl_engine_knobs.cc.o.d"
  "abl_engine_knobs"
  "abl_engine_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_engine_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

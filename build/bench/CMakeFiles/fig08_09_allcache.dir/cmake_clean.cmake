file(REMOVE_RECURSE
  "CMakeFiles/fig08_09_allcache.dir/fig08_09_allcache.cc.o"
  "CMakeFiles/fig08_09_allcache.dir/fig08_09_allcache.cc.o.d"
  "fig08_09_allcache"
  "fig08_09_allcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_09_allcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

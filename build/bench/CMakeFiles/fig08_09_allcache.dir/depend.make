# Empty dependencies file for fig08_09_allcache.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig18_skew_overhead.
# This may be replaced when dependencies are built.

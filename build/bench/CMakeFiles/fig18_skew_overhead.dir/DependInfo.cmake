
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig18_skew_overhead.cc" "bench/CMakeFiles/fig18_skew_overhead.dir/fig18_skew_overhead.cc.o" "gcc" "bench/CMakeFiles/fig18_skew_overhead.dir/fig18_skew_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbs3/CMakeFiles/dbs3_facade.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dbs3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dbs3_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dbs3_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dbs3_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbs3_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbs3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig18_skew_overhead.dir/fig18_skew_overhead.cc.o"
  "CMakeFiles/fig18_skew_overhead.dir/fig18_skew_overhead.cc.o.d"
  "fig18_skew_overhead"
  "fig18_skew_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_skew_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig12_assocjoin_skew.dir/fig12_assocjoin_skew.cc.o"
  "CMakeFiles/fig12_assocjoin_skew.dir/fig12_assocjoin_skew.cc.o.d"
  "fig12_assocjoin_skew"
  "fig12_assocjoin_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_assocjoin_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_encore_vs_ksr.
# This may be replaced when dependencies are built.

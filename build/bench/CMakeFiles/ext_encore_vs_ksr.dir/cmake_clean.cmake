file(REMOVE_RECURSE
  "CMakeFiles/ext_encore_vs_ksr.dir/ext_encore_vs_ksr.cc.o"
  "CMakeFiles/ext_encore_vs_ksr.dir/ext_encore_vs_ksr.cc.o.d"
  "ext_encore_vs_ksr"
  "ext_encore_vs_ksr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_encore_vs_ksr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbs3_model.a"
)

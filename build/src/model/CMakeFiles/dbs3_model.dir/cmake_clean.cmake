file(REMOVE_RECURSE
  "CMakeFiles/dbs3_model.dir/analysis.cc.o"
  "CMakeFiles/dbs3_model.dir/analysis.cc.o.d"
  "libdbs3_model.a"
  "libdbs3_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs3_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dbs3_model.
# This may be replaced when dependencies are built.

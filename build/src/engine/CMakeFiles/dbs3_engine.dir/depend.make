# Empty dependencies file for dbs3_engine.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/activation_queue.cc" "src/engine/CMakeFiles/dbs3_engine.dir/activation_queue.cc.o" "gcc" "src/engine/CMakeFiles/dbs3_engine.dir/activation_queue.cc.o.d"
  "/root/repo/src/engine/blocking_operators.cc" "src/engine/CMakeFiles/dbs3_engine.dir/blocking_operators.cc.o" "gcc" "src/engine/CMakeFiles/dbs3_engine.dir/blocking_operators.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/dbs3_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/dbs3_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/operation.cc" "src/engine/CMakeFiles/dbs3_engine.dir/operation.cc.o" "gcc" "src/engine/CMakeFiles/dbs3_engine.dir/operation.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/engine/CMakeFiles/dbs3_engine.dir/operators.cc.o" "gcc" "src/engine/CMakeFiles/dbs3_engine.dir/operators.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/dbs3_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/dbs3_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/strategy.cc" "src/engine/CMakeFiles/dbs3_engine.dir/strategy.cc.o" "gcc" "src/engine/CMakeFiles/dbs3_engine.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/dbs3_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbs3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

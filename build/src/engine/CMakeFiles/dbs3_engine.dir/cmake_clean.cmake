file(REMOVE_RECURSE
  "CMakeFiles/dbs3_engine.dir/activation_queue.cc.o"
  "CMakeFiles/dbs3_engine.dir/activation_queue.cc.o.d"
  "CMakeFiles/dbs3_engine.dir/blocking_operators.cc.o"
  "CMakeFiles/dbs3_engine.dir/blocking_operators.cc.o.d"
  "CMakeFiles/dbs3_engine.dir/executor.cc.o"
  "CMakeFiles/dbs3_engine.dir/executor.cc.o.d"
  "CMakeFiles/dbs3_engine.dir/operation.cc.o"
  "CMakeFiles/dbs3_engine.dir/operation.cc.o.d"
  "CMakeFiles/dbs3_engine.dir/operators.cc.o"
  "CMakeFiles/dbs3_engine.dir/operators.cc.o.d"
  "CMakeFiles/dbs3_engine.dir/plan.cc.o"
  "CMakeFiles/dbs3_engine.dir/plan.cc.o.d"
  "CMakeFiles/dbs3_engine.dir/strategy.cc.o"
  "CMakeFiles/dbs3_engine.dir/strategy.cc.o.d"
  "libdbs3_engine.a"
  "libdbs3_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs3_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

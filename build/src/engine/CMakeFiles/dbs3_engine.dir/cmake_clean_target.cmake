file(REMOVE_RECURSE
  "libdbs3_engine.a"
)

file(REMOVE_RECURSE
  "libdbs3_esql.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dbs3_esql.dir/lexer.cc.o"
  "CMakeFiles/dbs3_esql.dir/lexer.cc.o.d"
  "CMakeFiles/dbs3_esql.dir/parser.cc.o"
  "CMakeFiles/dbs3_esql.dir/parser.cc.o.d"
  "CMakeFiles/dbs3_esql.dir/planner.cc.o"
  "CMakeFiles/dbs3_esql.dir/planner.cc.o.d"
  "libdbs3_esql.a"
  "libdbs3_esql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs3_esql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dbs3_esql.
# This may be replaced when dependencies are built.

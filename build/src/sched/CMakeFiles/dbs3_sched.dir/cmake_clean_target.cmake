file(REMOVE_RECURSE
  "libdbs3_sched.a"
)

# Empty compiler generated dependencies file for dbs3_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbs3_sched.dir/scheduler.cc.o"
  "CMakeFiles/dbs3_sched.dir/scheduler.cc.o.d"
  "CMakeFiles/dbs3_sched.dir/subquery.cc.o"
  "CMakeFiles/dbs3_sched.dir/subquery.cc.o.d"
  "libdbs3_sched.a"
  "libdbs3_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs3_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbs3_facade.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dbs3_facade.dir/database.cc.o"
  "CMakeFiles/dbs3_facade.dir/database.cc.o.d"
  "CMakeFiles/dbs3_facade.dir/query.cc.o"
  "CMakeFiles/dbs3_facade.dir/query.cc.o.d"
  "libdbs3_facade.a"
  "libdbs3_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs3_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dbs3_facade.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src/dbs3
# Build directory: /root/repo/build/src/dbs3
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

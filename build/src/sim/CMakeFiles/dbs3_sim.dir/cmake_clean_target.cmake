file(REMOVE_RECURSE
  "libdbs3_sim.a"
)

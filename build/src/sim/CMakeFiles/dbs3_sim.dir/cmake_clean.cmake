file(REMOVE_RECURSE
  "CMakeFiles/dbs3_sim.dir/machine.cc.o"
  "CMakeFiles/dbs3_sim.dir/machine.cc.o.d"
  "CMakeFiles/dbs3_sim.dir/workload.cc.o"
  "CMakeFiles/dbs3_sim.dir/workload.cc.o.d"
  "libdbs3_sim.a"
  "libdbs3_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs3_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

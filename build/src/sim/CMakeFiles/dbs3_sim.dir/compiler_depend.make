# Empty compiler generated dependencies file for dbs3_sim.
# This may be replaced when dependencies are built.

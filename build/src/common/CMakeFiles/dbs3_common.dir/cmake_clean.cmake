file(REMOVE_RECURSE
  "CMakeFiles/dbs3_common.dir/logging.cc.o"
  "CMakeFiles/dbs3_common.dir/logging.cc.o.d"
  "CMakeFiles/dbs3_common.dir/stats.cc.o"
  "CMakeFiles/dbs3_common.dir/stats.cc.o.d"
  "CMakeFiles/dbs3_common.dir/status.cc.o"
  "CMakeFiles/dbs3_common.dir/status.cc.o.d"
  "CMakeFiles/dbs3_common.dir/zipf.cc.o"
  "CMakeFiles/dbs3_common.dir/zipf.cc.o.d"
  "libdbs3_common.a"
  "libdbs3_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs3_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dbs3_common.
# This may be replaced when dependencies are built.

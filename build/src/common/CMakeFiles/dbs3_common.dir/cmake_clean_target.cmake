file(REMOVE_RECURSE
  "libdbs3_common.a"
)

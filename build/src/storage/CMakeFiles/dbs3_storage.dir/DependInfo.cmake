
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/dbs3_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/storage/CMakeFiles/dbs3_storage.dir/disk.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/disk.cc.o.d"
  "/root/repo/src/storage/partitioner.cc" "src/storage/CMakeFiles/dbs3_storage.dir/partitioner.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/partitioner.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/storage/CMakeFiles/dbs3_storage.dir/relation.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/relation.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/dbs3_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/storage/CMakeFiles/dbs3_storage.dir/serialize.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/serialize.cc.o.d"
  "/root/repo/src/storage/skew.cc" "src/storage/CMakeFiles/dbs3_storage.dir/skew.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/skew.cc.o.d"
  "/root/repo/src/storage/temp_index.cc" "src/storage/CMakeFiles/dbs3_storage.dir/temp_index.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/temp_index.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/storage/CMakeFiles/dbs3_storage.dir/value.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/value.cc.o.d"
  "/root/repo/src/storage/wisconsin.cc" "src/storage/CMakeFiles/dbs3_storage.dir/wisconsin.cc.o" "gcc" "src/storage/CMakeFiles/dbs3_storage.dir/wisconsin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbs3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

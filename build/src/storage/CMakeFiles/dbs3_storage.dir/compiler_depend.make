# Empty compiler generated dependencies file for dbs3_storage.
# This may be replaced when dependencies are built.

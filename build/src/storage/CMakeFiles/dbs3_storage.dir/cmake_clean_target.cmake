file(REMOVE_RECURSE
  "libdbs3_storage.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dbs3_storage.dir/catalog.cc.o"
  "CMakeFiles/dbs3_storage.dir/catalog.cc.o.d"
  "CMakeFiles/dbs3_storage.dir/disk.cc.o"
  "CMakeFiles/dbs3_storage.dir/disk.cc.o.d"
  "CMakeFiles/dbs3_storage.dir/partitioner.cc.o"
  "CMakeFiles/dbs3_storage.dir/partitioner.cc.o.d"
  "CMakeFiles/dbs3_storage.dir/relation.cc.o"
  "CMakeFiles/dbs3_storage.dir/relation.cc.o.d"
  "CMakeFiles/dbs3_storage.dir/schema.cc.o"
  "CMakeFiles/dbs3_storage.dir/schema.cc.o.d"
  "CMakeFiles/dbs3_storage.dir/serialize.cc.o"
  "CMakeFiles/dbs3_storage.dir/serialize.cc.o.d"
  "CMakeFiles/dbs3_storage.dir/skew.cc.o"
  "CMakeFiles/dbs3_storage.dir/skew.cc.o.d"
  "CMakeFiles/dbs3_storage.dir/temp_index.cc.o"
  "CMakeFiles/dbs3_storage.dir/temp_index.cc.o.d"
  "CMakeFiles/dbs3_storage.dir/value.cc.o"
  "CMakeFiles/dbs3_storage.dir/value.cc.o.d"
  "CMakeFiles/dbs3_storage.dir/wisconsin.cc.o"
  "CMakeFiles/dbs3_storage.dir/wisconsin.cc.o.d"
  "libdbs3_storage.a"
  "libdbs3_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs3_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sim_model_agreement_test.dir/sim_model_agreement_test.cc.o"
  "CMakeFiles/sim_model_agreement_test.dir/sim_model_agreement_test.cc.o.d"
  "sim_model_agreement_test"
  "sim_model_agreement_test.pdb"
  "sim_model_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_model_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/activation_queue_test.dir/activation_queue_test.cc.o"
  "CMakeFiles/activation_queue_test.dir/activation_queue_test.cc.o.d"
  "activation_queue_test"
  "activation_queue_test.pdb"
  "activation_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activation_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hash_logging_test.cc" "tests/CMakeFiles/hash_logging_test.dir/hash_logging_test.cc.o" "gcc" "tests/CMakeFiles/hash_logging_test.dir/hash_logging_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/esql/CMakeFiles/dbs3_esql.dir/DependInfo.cmake"
  "/root/repo/build/src/dbs3/CMakeFiles/dbs3_facade.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dbs3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dbs3_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dbs3_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dbs3_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbs3_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbs3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/hash_logging_test.dir/hash_logging_test.cc.o"
  "CMakeFiles/hash_logging_test.dir/hash_logging_test.cc.o.d"
  "hash_logging_test"
  "hash_logging_test.pdb"
  "hash_logging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

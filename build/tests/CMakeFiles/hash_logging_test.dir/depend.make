# Empty dependencies file for hash_logging_test.
# This may be replaced when dependencies are built.

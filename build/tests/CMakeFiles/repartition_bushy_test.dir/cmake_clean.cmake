file(REMOVE_RECURSE
  "CMakeFiles/repartition_bushy_test.dir/repartition_bushy_test.cc.o"
  "CMakeFiles/repartition_bushy_test.dir/repartition_bushy_test.cc.o.d"
  "repartition_bushy_test"
  "repartition_bushy_test.pdb"
  "repartition_bushy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repartition_bushy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

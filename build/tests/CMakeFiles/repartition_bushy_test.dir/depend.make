# Empty dependencies file for repartition_bushy_test.
# This may be replaced when dependencies are built.

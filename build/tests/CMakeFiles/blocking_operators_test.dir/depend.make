# Empty dependencies file for blocking_operators_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/blocking_operators_test.dir/blocking_operators_test.cc.o"
  "CMakeFiles/blocking_operators_test.dir/blocking_operators_test.cc.o.d"
  "blocking_operators_test"
  "blocking_operators_test.pdb"
  "blocking_operators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/esql_differential_test.dir/esql_differential_test.cc.o"
  "CMakeFiles/esql_differential_test.dir/esql_differential_test.cc.o.d"
  "esql_differential_test"
  "esql_differential_test.pdb"
  "esql_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esql_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

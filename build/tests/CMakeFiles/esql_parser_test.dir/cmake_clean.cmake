file(REMOVE_RECURSE
  "CMakeFiles/esql_parser_test.dir/esql_parser_test.cc.o"
  "CMakeFiles/esql_parser_test.dir/esql_parser_test.cc.o.d"
  "esql_parser_test"
  "esql_parser_test.pdb"
  "esql_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

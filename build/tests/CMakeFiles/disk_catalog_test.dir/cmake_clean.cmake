file(REMOVE_RECURSE
  "CMakeFiles/disk_catalog_test.dir/disk_catalog_test.cc.o"
  "CMakeFiles/disk_catalog_test.dir/disk_catalog_test.cc.o.d"
  "disk_catalog_test"
  "disk_catalog_test.pdb"
  "disk_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for disk_catalog_test.
# This may be replaced when dependencies are built.

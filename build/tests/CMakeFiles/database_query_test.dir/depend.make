# Empty dependencies file for database_query_test.
# This may be replaced when dependencies are built.

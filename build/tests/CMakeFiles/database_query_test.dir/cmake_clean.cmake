file(REMOVE_RECURSE
  "CMakeFiles/database_query_test.dir/database_query_test.cc.o"
  "CMakeFiles/database_query_test.dir/database_query_test.cc.o.d"
  "database_query_test"
  "database_query_test.pdb"
  "database_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

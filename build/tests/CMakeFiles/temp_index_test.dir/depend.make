# Empty dependencies file for temp_index_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/temp_index_test.dir/temp_index_test.cc.o"
  "CMakeFiles/temp_index_test.dir/temp_index_test.cc.o.d"
  "temp_index_test"
  "temp_index_test.pdb"
  "temp_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temp_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

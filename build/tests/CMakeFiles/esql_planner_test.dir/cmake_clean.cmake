file(REMOVE_RECURSE
  "CMakeFiles/esql_planner_test.dir/esql_planner_test.cc.o"
  "CMakeFiles/esql_planner_test.dir/esql_planner_test.cc.o.d"
  "esql_planner_test"
  "esql_planner_test.pdb"
  "esql_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esql_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for esql_planner_test.
# This may be replaced when dependencies are built.

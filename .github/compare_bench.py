#!/usr/bin/env python3
"""Compare two Google Benchmark JSON dumps for the CI perf gate.

Usage: compare_bench.py BASELINE.json CANDIDATE.json TOLERANCE

Matches benchmarks by name on their median aggregate (the runs use
--benchmark_repetitions with --benchmark_report_aggregates_only) and
fails if any candidate median real_time exceeds the baseline by more
than TOLERANCE (a fraction, e.g. 0.03 for 3%). Benchmarks present on
only one side are reported and skipped, so adding or removing a case
does not trip the gate.
"""

import json
import sys


def medians(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("aggregate_name") == "median":
            out[b["run_name"]] = float(b["real_time"])
    return out


def main():
    baseline_path, candidate_path, tolerance = sys.argv[1:4]
    tolerance = float(tolerance)
    baseline = medians(baseline_path)
    candidate = medians(candidate_path)

    failed = False
    for name in sorted(set(baseline) | set(candidate)):
        if name not in baseline or name not in candidate:
            side = "baseline" if name in baseline else "candidate"
            print(f"SKIP {name}: only present in {side}")
            continue
        base = baseline[name]
        cand = candidate[name]
        ratio = cand / base if base > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failed = True
        print(f"{verdict} {name}: baseline={base:.0f} candidate={cand:.0f} "
              f"({(ratio - 1.0) * 100.0:+.2f}%)")

    if failed:
        print(f"perf gate failed: median real_time regressed more than "
              f"{tolerance * 100.0:.0f}% vs parent")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare two Google Benchmark JSON dumps for the CI perf gate.

Usage:
  compare_bench.py BASELINE.json CANDIDATE.json TOLERANCE
  compare_bench.py --datapath CANDIDATE.json BUDGET [BASELINE.json TOLERANCE]
  compare_bench.py --kernels CANDIDATE.json MIN_SPEEDUP
  compare_bench.py --spill CANDIDATE.json [SLACK_UNITS]
  compare_bench.py --sharedscan CANDIDATE.json
  compare_bench.py --adaptive CANDIDATE.json [MAX_LONG_WALL_RATIO]

Default mode matches benchmarks by name on their median aggregate (the
runs use --benchmark_repetitions with --benchmark_report_aggregates_only)
and fails if any candidate median real_time exceeds the baseline by more
than TOLERANCE (a fraction, e.g. 0.03 for 3%). Benchmarks present on
only one side are reported and skipped, so adding or removing a case
does not trip the gate.

--datapath mode gates micro_datapath's BENCH_datapath.json instead:
fails when the steady-state pipeline exceeds BUDGET heap allocations per
result tuple, when the iterator-range probe path allocated at all, or —
when a BASELINE dump from the parent commit is supplied — when the
pipeline wall regressed more than TOLERANCE.

--kernels mode gates micro_kernels' BENCH_kernels.json: for the filter
sweep and the probe sweep, the best batch speedup over the row-path
baseline among points with chunk_size >= 16 must reach MIN_SPEEDUP
(e.g. 2.0), and every vectorized point at any chunk size must report
zero steady-state heap allocations.

--spill mode gates ext_spilljoin's BENCH_spill.json: every budgeted
point must produce rows identical to its unbudgeted reference, every
quota high-water mark must stay within budget + SLACK_UNITS (default 64;
the slack covers the operators' bounded forced-progress overshoot), and
at least one point must have actually written spill bytes — otherwise
the sweep never exercised the budget and the gate is vacuous.

--sharedscan mode gates ext_sharedscan's BENCH_sharedscan.json: every
concurrency point's per-query results must be byte-identical between
the shared and solo modes (correctness is not retryable), shared-scan
batches must actually have formed at every point (else the window never
folded anything and the sweep is vacuous), and at the gate concurrency
the shared mode's QPS must strictly beat the solo mode's. QPS on shared
runners is noisy, so callers wrap the QPS part in a retry loop — a
correctness mismatch fails immediately regardless.

--adaptive mode gates ext_adaptive_sched's BENCH_adaptive.json: both
modes' results must match their references (not retryable), the
adaptive mode's short-query p95 and p99 must be strictly below the
static mode's, the long query's wall must stay within
MAX_LONG_WALL_RATIO (default 1.05) of the static run, and the
rebalancer must actually have parked and granted workers — otherwise
the run never reallocated anything and the comparison is vacuous.
"""

import json
import sys


def check_datapath(argv):
    candidate_path, budget = argv[0], float(argv[1])
    with open(candidate_path) as f:
        candidate = json.load(f)
    pipeline = candidate["pipeline"]
    probe = candidate["probe"]

    failed = False
    per_tuple = float(pipeline["allocations_per_tuple"])
    verdict = "OK" if per_tuple <= budget else "OVER BUDGET"
    failed |= per_tuple > budget
    print(f"{verdict} allocations_per_tuple: {per_tuple:.3f} "
          f"(budget {budget:.3f})")

    probe_allocs = int(probe["probe_allocations"])
    verdict = "OK" if probe_allocs == 0 else "ALLOCATING"
    failed |= probe_allocs != 0
    print(f"{verdict} probe_allocations: {probe_allocs} (must be 0)")

    for name, allocs in sorted(candidate.get("kernels", {}).items()):
        allocs = int(allocs)
        verdict = "OK" if allocs == 0 else "ALLOCATING"
        failed |= allocs != 0
        print(f"{verdict} kernel {name}: {allocs} (must be 0)")

    if len(argv) >= 4:
        baseline_path, tolerance = argv[2], float(argv[3])
        with open(baseline_path) as f:
            baseline = json.load(f)
        base = float(baseline["pipeline"]["wall_seconds"])
        cand = float(pipeline["wall_seconds"])
        ratio = cand / base if base > 0 else float("inf")
        verdict = "OK" if ratio <= 1.0 + tolerance else "REGRESSION"
        failed |= ratio > 1.0 + tolerance
        print(f"{verdict} pipeline wall_seconds: baseline={base:.6f} "
              f"candidate={cand:.6f} ({(ratio - 1.0) * 100.0:+.2f}%)")

    if failed:
        print("datapath gate failed")
        return 1
    return 0


def check_kernels(argv):
    candidate_path, min_speedup = argv[0], float(argv[1])
    with open(candidate_path) as f:
        candidate = json.load(f)

    failed = False
    for sweep in ("filter", "probe"):
        points = candidate[sweep]["points"]
        gated = [p for p in points if int(p["chunk_size"]) >= 16]
        best = max(gated, key=lambda p: float(p["speedup"]))
        speedup = float(best["speedup"])
        verdict = "OK" if speedup >= min_speedup else "TOO SLOW"
        failed |= speedup < min_speedup
        print(f"{verdict} {sweep} best speedup: {speedup:.2f}x at "
              f"chunk_size={best['chunk_size']} "
              f"(must reach {min_speedup:.2f}x at chunk_size >= 16)")
        for p in points:
            allocs = int(p["steady_allocations"])
            if allocs != 0:
                failed = True
                print(f"ALLOCATING {sweep} chunk_size={p['chunk_size']}: "
                      f"{allocs} steady-state allocations (must be 0)")
        print(f"OK {sweep}: zero steady-state allocations at every "
              f"chunk size" if all(int(p["steady_allocations"]) == 0
                                   for p in points) else
              f"{sweep}: allocation gate failed")

    if failed:
        print("kernel gate failed")
        return 1
    return 0


def check_spill(argv):
    candidate_path = argv[0]
    slack = float(argv[1]) if len(argv) >= 2 else 64.0
    with open(candidate_path) as f:
        candidate = json.load(f)
    points = candidate["points"]

    failed = False
    any_spilled = False
    for p in points:
        label = (f"a_rows={p['a_rows']} b_rows={p['b_rows']} "
                 f"skew={p['skew']} budget={p['budget']}")
        if not p["match"]:
            failed = True
            print(f"MISMATCH {label}: budgeted rows differ from the "
                  f"unbudgeted reference")
        else:
            print(f"OK {label}: rows match reference")
        high = float(p["high_water_units"])
        budget = float(p["budget"])
        if high > budget + slack:
            failed = True
            print(f"OVER BUDGET {label}: high_water={high:.0f} exceeds "
                  f"budget + slack ({budget:.0f} + {slack:.0f})")
        else:
            print(f"OK {label}: high_water={high:.0f} within "
                  f"budget + slack ({budget:.0f} + {slack:.0f})")
        any_spilled |= int(p["spill_bytes"]) > 0

    if not any_spilled:
        failed = True
        print("VACUOUS: no point wrote any spill bytes -- the sweep never "
              "pressured the budget")
    else:
        print("OK at least one point spilled")

    if failed:
        print("spill gate failed")
        return 1
    return 0


def check_sharedscan(argv):
    candidate_path = argv[0]
    with open(candidate_path) as f:
        candidate = json.load(f)

    failed = False
    for p in candidate["points"]:
        label = f"concurrency={p['concurrency']}"
        if not p["results_match"]:
            failed = True
            print(f"MISMATCH {label}: shared/solo results differ from the "
                  f"base-relation reference")
        else:
            print(f"OK {label}: every query's rows match the reference")
        batches = int(p["shared_batches"])
        if batches == 0:
            failed = True
            print(f"VACUOUS {label}: no shared batch formed -- the window "
                  f"never folded compatible queries")
        else:
            print(f"OK {label}: {batches} shared batches, "
                  f"{float(p['mean_queries_per_batch']):.1f} queries/batch")

    gate_n = int(candidate["gate_concurrency"])
    solo = float(candidate["gate_solo_qps"])
    shared = float(candidate["gate_shared_qps"])
    if shared > solo:
        print(f"OK gate: shared {shared:.1f} q/s > solo {solo:.1f} q/s "
              f"at {gate_n} concurrent queries")
    else:
        failed = True
        print(f"TOO SLOW gate: shared {shared:.1f} q/s <= solo {solo:.1f} "
              f"q/s at {gate_n} concurrent queries")

    if failed:
        print("sharedscan gate failed")
        return 1
    return 0


def check_adaptive(argv):
    candidate_path = argv[0]
    max_ratio = float(argv[1]) if len(argv) >= 2 else 1.05
    with open(candidate_path) as f:
        candidate = json.load(f)
    static = candidate["modes"]["static"]
    adaptive = candidate["modes"]["adaptive"]

    failed = False
    for name, mode in (("static", static), ("adaptive", adaptive)):
        if not mode["results_match"]:
            failed = True
            print(f"MISMATCH {name}: query results differ from reference")
        else:
            print(f"OK {name}: {int(mode['shorts'])} shorts and the long "
                  f"query all match their references")

    parked = int(adaptive["threads_parked"])
    granted = int(adaptive["threads_granted"])
    if parked == 0 or granted == 0:
        failed = True
        print(f"VACUOUS adaptive: parked={parked} granted={granted} -- the "
              f"rebalancer never reallocated a worker")
    else:
        print(f"OK adaptive: {parked} workers parked, {granted} granted")

    for pct in ("p95", "p99"):
        s = float(static[f"short_{pct}_us"])
        a = float(adaptive[f"short_{pct}_us"])
        if a < s:
            print(f"OK short {pct}: adaptive {a:.0f}us < static {s:.0f}us")
        else:
            failed = True
            print(f"TOO SLOW short {pct}: adaptive {a:.0f}us >= static "
                  f"{s:.0f}us")

    ratio = float(candidate["long_wall_ratio"])
    if ratio <= max_ratio:
        print(f"OK long wall: adaptive/static = {ratio:.3f} "
              f"(<= {max_ratio:.2f})")
    else:
        failed = True
        print(f"REGRESSION long wall: adaptive/static = {ratio:.3f} "
              f"exceeds {max_ratio:.2f}")

    if failed:
        print("adaptive gate failed")
        return 1
    return 0


def medians(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("aggregate_name") == "median":
            out[b["run_name"]] = float(b["real_time"])
    return out


def main():
    if sys.argv[1] == "--datapath":
        return check_datapath(sys.argv[2:])
    if sys.argv[1] == "--kernels":
        return check_kernels(sys.argv[2:])
    if sys.argv[1] == "--spill":
        return check_spill(sys.argv[2:])
    if sys.argv[1] == "--sharedscan":
        return check_sharedscan(sys.argv[2:])
    if sys.argv[1] == "--adaptive":
        return check_adaptive(sys.argv[2:])
    baseline_path, candidate_path, tolerance = sys.argv[1:4]
    tolerance = float(tolerance)
    baseline = medians(baseline_path)
    candidate = medians(candidate_path)

    failed = False
    for name in sorted(set(baseline) | set(candidate)):
        if name not in baseline or name not in candidate:
            side = "baseline" if name in baseline else "candidate"
            print(f"SKIP {name}: only present in {side}")
            continue
        base = baseline[name]
        cand = candidate[name]
        ratio = cand / base if base > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failed = True
        print(f"{verdict} {name}: baseline={base:.0f} candidate={cand:.0f} "
              f"({(ratio - 1.0) * 100.0:+.2f}%)")

    if failed:
        print(f"perf gate failed: median real_time regressed more than "
              f"{tolerance * 100.0:.0f}% vs parent")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
